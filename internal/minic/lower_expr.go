package minic

import (
	"privagic/internal/ir"
)

// expr lowers an expression to an rvalue. It returns nil after reporting an
// error (callers tolerate nil).
func (fl *funcLower) expr(e Expr) ir.Value {
	return fl.exprWant(e, nil)
}

// exprConv lowers an expression and converts it to the wanted type.
func (fl *funcLower) exprConv(e Expr, want ir.Type) ir.Value {
	v := fl.exprWant(e, want)
	if v == nil {
		return nil
	}
	return fl.convert(v, want, e.NodePos())
}

// exprWant lowers an expression; want (possibly nil) provides the context
// type used to color malloc sites and type NULL.
func (fl *funcLower) exprWant(e Expr, want ir.Type) ir.Value {
	fl.ensureBlock()
	fl.b.SetPos(e.NodePos().IR())
	switch ex := e.(type) {
	case *IntLit:
		return ir.I64Const(ex.V)
	case *FloatLit:
		return &ir.ConstFloat{Typ: ir.F64, V: ex.V}
	case *StrLit:
		g := fl.c.mod.InternString(ex.V)
		return fl.b.IndexAddr(g, ir.I64Const(0))
	case *NullLit:
		if pt, ok := want.(ir.PointerType); ok {
			return &ir.Null{Typ: pt}
		}
		return &ir.Null{Typ: ir.PtrTo(ir.I8)}
	case *Ident:
		return fl.identRValue(ex)
	case *Unary:
		return fl.unary(ex)
	case *Binary:
		return fl.binary(ex)
	case *Assign:
		return fl.assign(ex)
	case *IncDec:
		return fl.incDec(ex)
	case *CallExpr:
		return fl.call(ex, want)
	case *IndexExpr, *FieldExpr:
		a := fl.addr(e)
		if a == nil {
			return nil
		}
		return fl.loadOrDecay(a)
	case *CastExpr:
		to, _ := fl.c.resolveType(ex.Type)
		v := fl.exprWant(ex.X, to)
		if v == nil {
			return nil
		}
		return fl.convert(v, to, ex.Pos)
	case *SizeofExpr:
		t, _ := fl.c.resolveType(ex.Type)
		return ir.I64Const(t.Size())
	}
	fl.c.errf(e.NodePos(), "unsupported expression")
	return nil
}

// identRValue resolves a name to an rvalue: loads variables, decays arrays,
// and passes functions through as function-pointer values.
func (fl *funcLower) identRValue(ex *Ident) ir.Value {
	if l := fl.lookup(ex.Name); l != nil {
		return fl.loadOrDecay(l.addr)
	}
	if g := fl.c.globals[ex.Name]; g != nil {
		return fl.loadOrDecay(g)
	}
	if fn := fl.c.funcs[ex.Name]; fn != nil {
		return fn
	}
	fl.c.errf(ex.Pos, "undefined identifier %s", ex.Name)
	return nil
}

// loadOrDecay loads through a pointer, except that pointers to arrays decay
// to element pointers instead of loading the whole array.
func (fl *funcLower) loadOrDecay(a ir.Value) ir.Value {
	pt, ok := a.Type().(ir.PointerType)
	if !ok {
		return a
	}
	if _, isArr := pt.Elem.(ir.ArrayType); isArr {
		return fl.b.IndexAddr(a, ir.I64Const(0))
	}
	return fl.b.Load(a)
}

// addr lowers an lvalue expression to the address of its storage.
func (fl *funcLower) addr(e Expr) ir.Value {
	fl.ensureBlock()
	fl.b.SetPos(e.NodePos().IR())
	switch ex := e.(type) {
	case *Ident:
		if l := fl.lookup(ex.Name); l != nil {
			return l.addr
		}
		if g := fl.c.globals[ex.Name]; g != nil {
			return g
		}
		fl.c.errf(ex.Pos, "undefined identifier %s", ex.Name)
		return nil
	case *Unary:
		if ex.Op == UnDeref {
			return fl.expr(ex.X)
		}
	case *IndexExpr:
		base := fl.indexBase(ex.X)
		if base == nil {
			return nil
		}
		idx := fl.exprConv(ex.I, ir.I64)
		if idx == nil {
			return nil
		}
		return fl.b.IndexAddr(base, idx)
	case *FieldExpr:
		var base ir.Value
		if ex.Arrow {
			base = fl.expr(ex.X)
		} else {
			base = fl.addr(ex.X)
		}
		if base == nil {
			return nil
		}
		pt, ok := base.Type().(ir.PointerType)
		if !ok {
			fl.c.errf(ex.Pos, "field access on non-pointer %s", base.Type())
			return nil
		}
		st, ok := pt.Elem.(*ir.StructType)
		if !ok {
			fl.c.errf(ex.Pos, "field access on non-struct %s", pt.Elem)
			return nil
		}
		idx := st.FieldIndex(ex.Name)
		if idx < 0 {
			fl.c.errf(ex.Pos, "struct %s has no field %s", st.Name, ex.Name)
			return nil
		}
		return fl.b.FieldAddr(base, idx)
	}
	fl.c.errf(e.NodePos(), "expression is not an lvalue")
	return nil
}

// indexBase lowers the base of x[i]: arrays yield their address, pointers
// their value.
func (fl *funcLower) indexBase(x Expr) ir.Value {
	// If x is an lvalue of array type, use its address directly.
	switch x.(type) {
	case *Ident, *FieldExpr, *IndexExpr:
		a := fl.addr(x)
		if a == nil {
			return nil
		}
		pt := a.Type().(ir.PointerType)
		if _, isArr := pt.Elem.(ir.ArrayType); isArr {
			return a
		}
		return fl.loadOrDecay(a)
	}
	return fl.expr(x)
}

func (fl *funcLower) unary(ex *Unary) ir.Value {
	switch ex.Op {
	case UnAddr:
		return fl.addr(ex.X)
	case UnDeref:
		p := fl.expr(ex.X)
		if p == nil {
			return nil
		}
		if _, ok := p.Type().(ir.PointerType); !ok {
			fl.c.errf(ex.Pos, "dereference of non-pointer %s", p.Type())
			return nil
		}
		return fl.loadOrDecay(p)
	case UnNeg:
		v := fl.expr(ex.X)
		if v == nil {
			return nil
		}
		if ft, ok := v.Type().(ir.FloatType); ok {
			return fl.b.BinOp(ir.OpSub, &ir.ConstFloat{Typ: ft, V: 0}, v)
		}
		it, _ := v.Type().(ir.IntType)
		return fl.b.BinOp(ir.OpSub, ir.NewConstInt(it, 0), v)
	case UnNot:
		v := fl.expr(ex.X)
		if v == nil {
			return nil
		}
		z := fl.zeroOf(v.Type())
		c := fl.b.Cmp(ir.CmpEq, v, z)
		return fl.convert(c, ir.I64, ex.Pos)
	case UnBitNot:
		v := fl.exprConv(ex.X, ir.I64)
		if v == nil {
			return nil
		}
		return fl.b.BinOp(ir.OpXor, v, ir.I64Const(-1))
	}
	fl.c.errf(ex.Pos, "unsupported unary operator")
	return nil
}

// zeroOf returns the zero constant of a type (for truthiness tests).
func (fl *funcLower) zeroOf(t ir.Type) ir.Value {
	switch tt := t.(type) {
	case ir.IntType:
		return ir.NewConstInt(tt, 0)
	case ir.FloatType:
		return &ir.ConstFloat{Typ: tt, V: 0}
	case ir.PointerType:
		return &ir.Null{Typ: tt}
	default:
		return ir.I64Const(0)
	}
}

// truthy converts a value to an i1 condition.
func (fl *funcLower) truthy(v ir.Value) ir.Value {
	if v == nil {
		return nil
	}
	if it, ok := v.Type().(ir.IntType); ok && it.Bits == 1 {
		return v
	}
	return fl.b.Cmp(ir.CmpNe, v, fl.zeroOf(v.Type()))
}

func (fl *funcLower) binary(ex *Binary) ir.Value {
	switch ex.Op {
	case BinLAnd, BinLOr:
		return fl.logical(ex)
	}
	x := fl.expr(ex.X)
	y := fl.expr(ex.Y)
	if x == nil || y == nil {
		return nil
	}
	// Pointer arithmetic: p + i and p - i scale by element size.
	if pt, ok := x.Type().(ir.PointerType); ok && (ex.Op == BinAdd || ex.Op == BinSub) {
		if _, isP := y.Type().(ir.PointerType); !isP {
			idx := fl.convert(y, ir.I64, ex.Pos)
			if ex.Op == BinSub {
				idx = fl.b.BinOp(ir.OpSub, ir.I64Const(0), idx)
			}
			_ = pt
			return fl.b.IndexAddr(x, idx)
		}
	}
	x, y = fl.usualConvert(x, y, ex.Pos)
	if x == nil || y == nil {
		return nil
	}
	var cmp ir.CmpPred
	switch ex.Op {
	case BinEq:
		cmp = ir.CmpEq
	case BinNe:
		cmp = ir.CmpNe
	case BinLt:
		cmp = ir.CmpLt
	case BinLe:
		cmp = ir.CmpLe
	case BinGt:
		cmp = ir.CmpGt
	case BinGe:
		cmp = ir.CmpGe
	}
	if cmp != 0 {
		c := fl.b.Cmp(cmp, x, y)
		return fl.convert(c, ir.I64, ex.Pos)
	}
	var op ir.BinOpKind
	switch ex.Op {
	case BinAdd:
		op = ir.OpAdd
	case BinSub:
		op = ir.OpSub
	case BinMul:
		op = ir.OpMul
	case BinDiv:
		op = ir.OpDiv
	case BinRem:
		op = ir.OpRem
	case BinAnd:
		op = ir.OpAnd
	case BinOr:
		op = ir.OpOr
	case BinXor:
		op = ir.OpXor
	case BinShl:
		op = ir.OpShl
	case BinShr:
		op = ir.OpShr
	default:
		fl.c.errf(ex.Pos, "unsupported binary operator")
		return nil
	}
	return fl.b.BinOp(op, x, y)
}

// usualConvert applies the usual arithmetic conversions: mixed int widths
// promote to i64, int+float promotes to f64.
func (fl *funcLower) usualConvert(x, y ir.Value, p Pos) (ir.Value, ir.Value) {
	xt, yt := x.Type(), y.Type()
	if ir.TypesEqual(xt, yt) {
		return x, y
	}
	_, xf := xt.(ir.FloatType)
	_, yf := yt.(ir.FloatType)
	if xf || yf {
		return fl.convert(x, ir.F64, p), fl.convert(y, ir.F64, p)
	}
	_, xp := xt.(ir.PointerType)
	_, yp := yt.(ir.PointerType)
	if xp && yp {
		return x, y // pointer comparison
	}
	if xp || yp {
		// Pointer vs integer (e.g. p != 0): compare as machine words.
		return fl.convert(x, ir.I64, p), fl.convert(y, ir.I64, p)
	}
	return fl.convert(x, ir.I64, p), fl.convert(y, ir.I64, p)
}

// logical lowers short-circuit && and || through a temporary slot that
// mem2reg later promotes to a φ.
func (fl *funcLower) logical(ex *Binary) ir.Value {
	slot := fl.b.Alloca(ir.I64, ir.None)
	evalY := fl.fn.NewBlock("sc.rhs")
	done := fl.fn.NewBlock("sc.done")

	x := fl.truthy(fl.expr(ex.X))
	if x == nil {
		return nil
	}
	xw := fl.convert(x, ir.I64, ex.Pos)
	fl.b.Store(xw, slot)
	if ex.Op == BinLAnd {
		fl.b.CondBr(x, evalY, done)
	} else {
		fl.b.CondBr(x, done, evalY)
	}
	fl.b.At(evalY)
	y := fl.truthy(fl.expr(ex.Y))
	if y == nil {
		return nil
	}
	yw := fl.convert(y, ir.I64, ex.Pos)
	fl.b.Store(yw, slot)
	if fl.b.Cur.Terminator() == nil {
		fl.b.Br(done)
	}
	fl.b.At(done)
	return fl.b.Load(slot)
}

func (fl *funcLower) assign(ex *Assign) ir.Value {
	dst := fl.addr(ex.LHS)
	if dst == nil {
		return nil
	}
	elem := dst.Type().(ir.PointerType).Elem
	var v ir.Value
	if ex.Op == 0 {
		v = fl.exprConv(ex.RHS, elem)
	} else {
		old := fl.b.Load(dst)
		rhs := fl.expr(ex.RHS)
		if rhs == nil {
			return nil
		}
		if pt, ok := old.Type().(ir.PointerType); ok {
			// p += n pointer arithmetic.
			idx := fl.convert(rhs, ir.I64, ex.Pos)
			if ex.Op == BinSub {
				idx = fl.b.BinOp(ir.OpSub, ir.I64Const(0), idx)
			}
			_ = pt
			v = fl.b.IndexAddr(old, idx)
		} else {
			rhs = fl.convert(rhs, old.Type(), ex.Pos)
			op := ir.OpAdd
			if ex.Op == BinSub {
				op = ir.OpSub
			}
			v = fl.b.BinOp(op, old, rhs)
		}
	}
	if v == nil {
		return nil
	}
	fl.b.Store(v, dst)
	return v
}

func (fl *funcLower) incDec(ex *IncDec) ir.Value {
	dst := fl.addr(ex.X)
	if dst == nil {
		return nil
	}
	old := fl.b.Load(dst)
	var nv ir.Value
	if _, ok := old.Type().(ir.PointerType); ok {
		step := int64(1)
		if ex.Dec {
			step = -1
		}
		nv = fl.b.IndexAddr(old, ir.I64Const(step))
	} else {
		it, _ := old.Type().(ir.IntType)
		op := ir.OpAdd
		if ex.Dec {
			op = ir.OpSub
		}
		nv = fl.b.BinOp(op, old, ir.NewConstInt(it, 1))
	}
	fl.b.Store(nv, dst)
	if ex.Post {
		return old
	}
	return nv
}

// convert emits the conversion of v to type "to" (no-op when types match).
func (fl *funcLower) convert(v ir.Value, to ir.Type, p Pos) ir.Value {
	if v == nil || to == nil || ir.TypesEqual(v.Type(), to) {
		return v
	}
	// Constant folding for integer literals.
	if ci, ok := v.(*ir.ConstInt); ok {
		switch tt := to.(type) {
		case ir.IntType:
			return ir.NewConstInt(tt, truncInt(ci.V, tt.Bits))
		case ir.FloatType:
			return &ir.ConstFloat{Typ: tt, V: float64(ci.V)}
		case ir.PointerType:
			if ci.V == 0 {
				return &ir.Null{Typ: tt}
			}
		}
	}
	if n, ok := v.(*ir.Null); ok {
		if tt, isP := to.(ir.PointerType); isP {
			_ = n
			return &ir.Null{Typ: tt}
		}
	}
	from := v.Type()
	switch from.(type) {
	case ir.IntType, ir.FloatType, ir.PointerType, ir.FuncType:
		switch to.(type) {
		case ir.IntType, ir.FloatType, ir.PointerType, ir.FuncType:
			return fl.b.Cast(v, to)
		}
	}
	fl.c.errf(p, "cannot convert %s to %s", from, to)
	return nil
}

func truncInt(v int64, bits int) int64 {
	switch bits {
	case 1:
		return v & 1
	case 8:
		return int64(int8(v))
	case 32:
		return int64(int32(v))
	default:
		return v
	}
}
