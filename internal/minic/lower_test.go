package minic

import (
	"strings"
	"testing"

	"privagic/internal/ir"
)

const figure1Src = `
struct account {
	char color(blue) name[256];
	double color(red) balance;
};

struct account* create(char* name) {
	struct account* res = malloc(sizeof(struct account));
	strncpy(res->name, name, 256);
	res->balance = 0.0;
	return res;
}
`

func TestLowerFigure1(t *testing.T) {
	mod, err := Compile("figure1.c", figure1Src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st := mod.Struct("account")
	if st == nil {
		t.Fatal("struct account not lowered")
	}
	if got := len(st.Fields); got != 2 {
		t.Fatalf("account has %d fields, want 2", got)
	}
	if st.Fields[0].Color != ir.Named("blue") {
		t.Errorf("name color = %v, want blue", st.Fields[0].Color)
	}
	if st.Fields[1].Color != ir.Named("red") {
		t.Errorf("balance color = %v, want red", st.Fields[1].Color)
	}
	if len(st.Colors()) != 2 {
		t.Errorf("Colors() = %v, want two colors", st.Colors())
	}
	fn := mod.Func("create")
	if fn == nil || fn.External {
		t.Fatal("create not defined")
	}
	if err := ir.VerifyFunc(fn); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestLowerControlFlow(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	while (s > 100) { s = s - 100; }
	return s;
}
int logic(int a, int b) {
	if (a && !b) return 1;
	if (a || b) return 2;
	return 0;
}
`
	mod, err := Compile("cf.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, name := range []string{"fib", "sum", "logic"} {
		if mod.Func(name) == nil {
			t.Errorf("function %s missing", name)
		}
	}
}

func TestLowerPointersAndArrays(t *testing.T) {
	src := `
int color(blue) g;
int color(blue)* take_addr() { return &g; }
long len_of(char* s) { return strlen(s); }
char buf[64];
void fill() {
	for (int i = 0; i < 63; i++) buf[i] = 'a';
	buf[63] = 0;
}
`
	mod, err := Compile("ptr.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	fn := mod.Func("take_addr")
	pt, ok := fn.RetTyp.(ir.PointerType)
	if !ok || pt.Color != ir.Named("blue") {
		t.Errorf("take_addr returns %v, want pointer to blue int", fn.RetTyp)
	}
}

func TestLowerFuncPointer(t *testing.T) {
	src := `
int twice(int x) { return x + x; }
int apply(int (*f)(int), int v) { return f(v); }
int use() { return apply(twice, 21); }
`
	mod, err := Compile("fp.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	apply := mod.Func("apply")
	if apply == nil {
		t.Fatal("apply missing")
	}
	if _, ok := apply.Params[0].Typ.(ir.FuncType); !ok {
		t.Errorf("apply param type = %v, want function type", apply.Params[0].Typ)
	}
	var sawIndirect bool
	apply.Instrs(func(_ *ir.Block, in ir.Instr) {
		if c, ok := in.(*ir.Call); ok && c.IsIndirect() {
			sawIndirect = true
		}
	})
	if !sawIndirect {
		t.Error("apply contains no indirect call")
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined", `int f() { return x; }`, "undefined identifier"},
		{"badfield", `struct s { int a; }; int f(struct s* p) { return p->b; }`, "no field"},
		{"badcall", `int f() { return g(); }`, "undeclared function"},
		{"arity", `int g(int a) { return a; } int f() { return g(); }`, "1"},
		{"breakless", `int f() { break; return 0; }`, "break outside loop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("e.c", tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestAttributesParsed(t *testing.T) {
	src := `
entry int main() { return 0; }
within void* my_memcpy(void* d, void* s, long n);
ignore void encrypt(char* plain, long len, char* cipher);
`
	mod, err := Compile("attr.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !mod.Func("main").Entry {
		t.Error("main not marked entry")
	}
	if !mod.Func("my_memcpy").Within {
		t.Error("my_memcpy not marked within")
	}
	enc := mod.Func("encrypt")
	if !enc.Ignore || !enc.Within {
		t.Error("encrypt not marked ignore (ignore implies within)")
	}
}
