package minic

import (
	"fmt"

	"privagic/internal/ir"
)

// Parser builds an AST from tokens.
type Parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses a whole translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	f := &File{Name: file}
	for p.peek().Kind != TokEOF {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
	}
	return f, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokKind) bool { return p.peek().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind, what string) (Token, error) {
	if !p.at(k) {
		t := p.peek()
		return t, p.errAt(t, "expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *Parser) errAt(t Token, format string, args ...any) error {
	return &Error{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) posOf(t Token) Pos { return Pos{File: p.file, Line: t.Line, Col: t.Col} }

// isTypeStart reports whether the token begins a type.
func (p *Parser) isTypeStart(t Token) bool {
	switch t.Kind {
	case TokKwInt, TokKwLong, TokKwChar, TokKwDouble, TokKwVoid, TokKwStruct,
		TokKwConst, TokKwUnsigned:
		return true
	}
	return false
}

// parseColor parses "color(IDENT)" and returns the named color.
func (p *Parser) parseColor() (ir.Color, error) {
	if _, err := p.expect(TokKwColor, "'color'"); err != nil {
		return ir.None, err
	}
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return ir.None, err
	}
	id, err := p.expect(TokIdent, "color name")
	if err != nil {
		return ir.None, err
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return ir.None, err
	}
	switch id.Text {
	case "U":
		return ir.U, nil
	case "S":
		return ir.S, nil
	default:
		return ir.Named(id.Text), nil
	}
}

// parseBaseType parses a base type with optional const/unsigned noise words
// and an optional trailing color qualifier.
func (p *Parser) parseBaseType() (TypeExpr, error) {
	for p.at(TokKwConst) || p.at(TokKwUnsigned) {
		p.next()
	}
	t := p.peek()
	bt := &BaseType{Pos: p.posOf(t)}
	switch t.Kind {
	case TokKwInt:
		bt.Kind = BaseInt
		p.next()
	case TokKwLong:
		bt.Kind = BaseLong
		p.next()
		p.accept(TokKwLong) // "long long"
		p.accept(TokKwInt)  // "long int"
	case TokKwChar:
		bt.Kind = BaseChar
		p.next()
	case TokKwDouble:
		bt.Kind = BaseDouble
		p.next()
	case TokKwVoid:
		bt.Kind = BaseVoid
		p.next()
	case TokKwStruct:
		p.next()
		id, err := p.expect(TokIdent, "struct name")
		if err != nil {
			return nil, err
		}
		bt.Kind = BaseStruct
		bt.StructName = id.Text
	default:
		return nil, p.errAt(t, "expected type, found %s", t)
	}
	if p.at(TokKwColor) {
		c, err := p.parseColor()
		if err != nil {
			return nil, err
		}
		bt.Color = c
	}
	return bt, nil
}

// parsePointers wraps typ in pointer declarators, each with an optional
// trailing color qualifier.
func (p *Parser) parsePointers(typ TypeExpr) (TypeExpr, error) {
	for p.at(TokStar) {
		t := p.next()
		pt := &PtrType{Pos: p.posOf(t), Elem: typ}
		if p.at(TokKwColor) {
			c, err := p.parseColor()
			if err != nil {
				return nil, err
			}
			pt.Color = c
		}
		typ = pt
	}
	return typ, nil
}

// parseType parses a full type (base + pointers), as used in casts and
// sizeof.
func (p *Parser) parseType() (TypeExpr, error) {
	bt, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	return p.parsePointers(bt)
}

// parseTopDecl parses a struct declaration, a global variable, or a
// function declaration/definition.
func (p *Parser) parseTopDecl() (Decl, error) {
	if p.accept(TokSemi) {
		return nil, nil
	}
	attr := FuncAttr{}
	for {
		switch p.peek().Kind {
		case TokKwEntry:
			attr.Entry = true
			p.next()
			continue
		case TokKwWithin:
			attr.Within = true
			p.next()
			continue
		case TokKwIgnore:
			attr.Ignore = true
			p.next()
			continue
		case TokKwExtern:
			attr.Extern = true
			p.next()
			continue
		case TokKwStatic:
			attr.Static = true
			p.next()
			continue
		}
		break
	}

	// struct S { ... };
	if p.at(TokKwStruct) && p.peekN(1).Kind == TokIdent && p.peekN(2).Kind == TokLBrace {
		return p.parseStructDecl()
	}

	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	typ, nameTok, err := p.parseDeclarator(typ)
	if err != nil {
		return nil, err
	}

	if _, isFP := typ.(*FuncPtrType); !isFP && p.at(TokLParen) {
		return p.parseFuncRest(attr, typ, nameTok)
	}

	// Global variable.
	vd, err := p.finishVarDecl(typ, nameTok)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return vd, nil
}

// finishVarDecl parses array suffixes and an optional initializer.
func (p *Parser) finishVarDecl(typ TypeExpr, nameTok Token) (*VarDecl, error) {
	for p.at(TokLBracket) {
		t := p.next()
		lenTok, err := p.expect(TokInt, "array length")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket, "']'"); err != nil {
			return nil, err
		}
		typ = &ArrType{Pos: p.posOf(t), Elem: typ, Len: lenTok.Int}
	}
	vd := &VarDecl{Pos: p.posOf(nameTok), Name: nameTok.Text, Type: typ}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	return vd, nil
}

// parseDeclarator parses either a plain name or a function-pointer
// declarator "(*name)(param-types)" wrapping base.
func (p *Parser) parseDeclarator(base TypeExpr) (TypeExpr, Token, error) {
	if p.at(TokLParen) && p.peekN(1).Kind == TokStar {
		lp := p.next() // (
		p.next()       // *
		nameTok, err := p.expect(TokIdent, "function pointer name")
		if err != nil {
			return nil, nameTok, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, nameTok, err
		}
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, nameTok, err
		}
		fp := &FuncPtrType{Pos: p.posOf(lp), Ret: base}
		if !p.at(TokRParen) {
			if p.at(TokKwVoid) && p.peekN(1).Kind == TokRParen {
				p.next()
			} else {
				for {
					pt, err := p.parseType()
					if err != nil {
						return nil, nameTok, err
					}
					p.accept(TokIdent) // optional parameter name
					fp.Params = append(fp.Params, pt)
					if !p.accept(TokComma) {
						break
					}
				}
			}
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, nameTok, err
		}
		return fp, nameTok, nil
	}
	nameTok, err := p.expect(TokIdent, "declarator name")
	return base, nameTok, err
}

// parseStructDecl parses "struct S { fields };".
func (p *Parser) parseStructDecl() (Decl, error) {
	p.next() // struct
	nameTok := p.next()
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Pos: p.posOf(nameTok), Name: nameTok.Text}
	for !p.at(TokRBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(TokIdent, "field name")
		if err != nil {
			return nil, err
		}
		fd, err := p.finishVarDecl(ft, fn)
		if err != nil {
			return nil, err
		}
		if fd.Init != nil {
			return nil, p.errAt(fn, "struct field cannot have an initializer")
		}
		sd.Fields = append(sd.Fields, fd)
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if _, err := p.expect(TokSemi, "';' after struct"); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseFuncRest parses the parameter list and optional body.
func (p *Parser) parseFuncRest(attr FuncAttr, ret TypeExpr, nameTok Token) (Decl, error) {
	p.next() // (
	fd := &FuncDecl{Pos: p.posOf(nameTok), Attr: attr, Ret: ret, Name: nameTok.Text}
	if !p.at(TokRParen) {
		if p.at(TokKwVoid) && p.peekN(1).Kind == TokRParen {
			p.next() // f(void)
		} else {
			for {
				if p.accept(TokEllipsis) {
					fd.Variadic = true
					break
				}
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				var pd *VarDecl
				if p.at(TokLParen) {
					dt, nameTok, derr := p.parseDeclarator(pt)
					if derr != nil {
						return nil, derr
					}
					pd = &VarDecl{Pos: p.posOf(nameTok), Name: nameTok.Text, Type: dt}
				} else {
					pname := Token{Text: fmt.Sprintf("arg%d", len(fd.Params)), Line: p.peek().Line, Col: p.peek().Col}
					if p.at(TokIdent) {
						pname = p.next()
					}
					var perr error
					pd, perr = p.finishVarDecl(pt, pname)
					if perr != nil {
						return nil, perr
					}
				}
				fd.Params = append(fd.Params, pd)
				if !p.accept(TokComma) {
					break
				}
			}
		}
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	if p.accept(TokSemi) {
		return fd, nil // declaration
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// parseBlock parses "{ stmts }".
func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace, "'{'")
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: p.posOf(lb)}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errAt(p.peek(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

// parseStmt parses one statement.
func (p *Parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: p.posOf(t), Cond: cond, Then: then}
		if p.accept(TokKwElse) {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case TokKwWhile:
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: p.posOf(t), Cond: cond, Body: body}, nil
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		p.next()
		st := &ReturnStmt{Pos: p.posOf(t)}
		if !p.at(TokSemi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Val = v
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return st, nil
	case TokKwBreak:
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: p.posOf(t)}, nil
	case TokKwContinue:
		p.next()
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: p.posOf(t)}, nil
	case TokSemi:
		p.next()
		return &BlockStmt{Pos: p.posOf(t)}, nil
	}
	if p.isTypeStart(t) {
		return p.parseDeclStmt()
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: p.posOf(t), X: x}, nil
}

// parseDeclStmt parses a local variable declaration.
func (p *Parser) parseDeclStmt() (Stmt, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	typ, nameTok, err := p.parseDeclarator(typ)
	if err != nil {
		return nil, err
	}
	var vd *VarDecl
	if _, isFP := typ.(*FuncPtrType); isFP {
		vd = &VarDecl{Pos: p.posOf(nameTok), Name: nameTok.Text, Type: typ}
		if p.accept(TokAssign) {
			init, ierr := p.parseExpr()
			if ierr != nil {
				return nil, ierr
			}
			vd.Init = init
		}
	} else {
		vd, err = p.finishVarDecl(typ, nameTok)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &DeclStmt{Pos: vd.Pos, Decl: vd}, nil
}

// parseFor parses a C for statement.
func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: p.posOf(t)}
	if !p.at(TokSemi) {
		if p.isTypeStart(p.peek()) {
			s, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{Pos: p.posOf(t), X: x}
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(TokSemi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = x
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseExpr parses an assignment-level expression.
func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.Kind {
	case TokAssign, TokPlusAssign, TokMinusAssign:
		p.next()
		rhs, err := p.parseExpr() // right associative
		if err != nil {
			return nil, err
		}
		op := BinOp(0)
		if t.Kind == TokPlusAssign {
			op = BinAdd
		} else if t.Kind == TokMinusAssign {
			op = BinSub
		}
		return &Assign{Pos: p.posOf(t), Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// binPrec returns the precedence of the binary operator at tok, or -1.
func binPrec(k TokKind) (BinOp, int) {
	switch k {
	case TokOrOr:
		return BinLOr, 1
	case TokAndAnd:
		return BinLAnd, 2
	case TokPipe:
		return BinOr, 3
	case TokCaret:
		return BinXor, 4
	case TokAmp:
		return BinAnd, 5
	case TokEqEq:
		return BinEq, 6
	case TokNe:
		return BinNe, 6
	case TokLt:
		return BinLt, 7
	case TokLe:
		return BinLe, 7
	case TokGt:
		return BinGt, 7
	case TokGe:
		return BinGe, 7
	case TokShl:
		return BinShl, 8
	case TokShr:
		return BinShr, 8
	case TokPlus:
		return BinAdd, 9
	case TokMinus:
		return BinSub, 9
	case TokStar:
		return BinMul, 10
	case TokSlash:
		return BinDiv, 10
	case TokPercent:
		return BinRem, 10
	}
	return 0, -1
}

// parseBinary is a precedence climber.
func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op, prec := binPrec(t.Kind)
		if prec < 0 || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: p.posOf(t), Op: op, X: lhs, Y: rhs}
	}
}

// parseUnary parses prefix operators, casts and sizeof.
func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: p.posOf(t), Op: UnNeg, X: x}, nil
	case TokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: p.posOf(t), Op: UnNot, X: x}, nil
	case TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: p.posOf(t), Op: UnBitNot, X: x}, nil
	case TokStar:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: p.posOf(t), Op: UnDeref, X: x}, nil
	case TokAmp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: p.posOf(t), Op: UnAddr, X: x}, nil
	case TokPlusPlus, TokMinusMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDec{Pos: p.posOf(t), X: x, Dec: t.Kind == TokMinusMinus}, nil
	case TokKwSizeof:
		p.next()
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &SizeofExpr{Pos: p.posOf(t), Type: typ}, nil
	case TokLParen:
		// Cast if '(' is followed by a type.
		if p.isTypeStart(p.peekN(1)) {
			p.next()
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: p.posOf(t), Type: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

// parsePostfix parses primary expressions and postfix operators.
func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Pos: p.posOf(t), Fun: x}
			for !p.at(TokRParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			x = call
		case TokLBracket:
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket, "']'"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: p.posOf(t), X: x, I: i}
		case TokDot, TokArrow:
			p.next()
			id, err := p.expect(TokIdent, "field name")
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{Pos: p.posOf(t), X: x, Name: id.Text, Arrow: t.Kind == TokArrow}
		case TokPlusPlus, TokMinusMinus:
			p.next()
			x = &IncDec{Pos: p.posOf(t), X: x, Dec: t.Kind == TokMinusMinus, Post: true}
		default:
			return x, nil
		}
	}
}

// parsePrimary parses literals, identifiers and parenthesized expressions.
func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt, TokChar:
		return &IntLit{Pos: p.posOf(t), V: t.Int}, nil
	case TokFloat:
		return &FloatLit{Pos: p.posOf(t), V: t.Flt}, nil
	case TokString:
		return &StrLit{Pos: p.posOf(t), V: t.Text}, nil
	case TokKwNull:
		return &NullLit{Pos: p.posOf(t)}, nil
	case TokIdent:
		return &Ident{Pos: p.posOf(t), Name: t.Text}, nil
	case TokLParen:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errAt(t, "unexpected token %s in expression", t)
}
