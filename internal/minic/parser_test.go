package minic

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("p.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseStructWithColors(t *testing.T) {
	f := parseOK(t, `struct s { int color(blue) a; char b[4]; struct s* next; };`)
	sd, ok := f.Decls[0].(*StructDecl)
	if !ok || sd.Name != "s" || len(sd.Fields) != 3 {
		t.Fatalf("struct decl wrong: %+v", f.Decls[0])
	}
	bt := sd.Fields[0].Type.(*BaseType)
	if bt.Color.Name != "blue" {
		t.Errorf("field color = %v", bt.Color)
	}
	if _, isArr := sd.Fields[1].Type.(*ArrType); !isArr {
		t.Error("array field not parsed")
	}
	if _, isPtr := sd.Fields[2].Type.(*PtrType); !isPtr {
		t.Error("pointer field not parsed")
	}
}

func TestParsePointerColorPositions(t *testing.T) {
	// int color(blue)* color(red) p: pointer to blue int, stored in red.
	f := parseOK(t, `int color(blue)* color(red) p;`)
	vd := f.Decls[0].(*VarDecl)
	pt := vd.Type.(*PtrType)
	if pt.Color.Name != "red" {
		t.Errorf("pointer location color = %v, want red", pt.Color)
	}
	if pt.Elem.(*BaseType).Color.Name != "blue" {
		t.Errorf("pointee color = %v, want blue", pt.Elem.(*BaseType).Color)
	}
}

func TestParseAttributes(t *testing.T) {
	f := parseOK(t, `
entry int main() { return 0; }
within static long helper(long a);
ignore void leak(char* d, char color(b)* s, long n);
`)
	main := f.Decls[0].(*FuncDecl)
	if !main.Attr.Entry {
		t.Error("entry attr lost")
	}
	helper := f.Decls[1].(*FuncDecl)
	if !helper.Attr.Within || !helper.Attr.Static || helper.Body != nil {
		t.Error("within static declaration wrong")
	}
	leak := f.Decls[2].(*FuncDecl)
	if !leak.Attr.Ignore {
		t.Error("ignore attr lost")
	}
}

func TestParseFuncPointerDeclarators(t *testing.T) {
	f := parseOK(t, `
long apply(long (*fn)(long, long), long a, long b) { return fn(a, b); }
long (*handler)(long);
`)
	apply := f.Decls[0].(*FuncDecl)
	fp, ok := apply.Params[0].Type.(*FuncPtrType)
	if !ok || len(fp.Params) != 2 {
		t.Fatalf("funcptr param wrong: %+v", apply.Params[0].Type)
	}
	global := f.Decls[1].(*VarDecl)
	if _, ok := global.Type.(*FuncPtrType); !ok {
		t.Error("global funcptr wrong")
	}
}

func TestParseVariadicDecl(t *testing.T) {
	f := parseOK(t, `extern long printf2(char* fmt, ...);`)
	fd := f.Decls[0].(*FuncDecl)
	if !fd.Variadic || len(fd.Params) != 1 {
		t.Errorf("variadic decl wrong: %+v", fd)
	}
}

func TestParseExpressionShapes(t *testing.T) {
	f := parseOK(t, `
int g() {
	int a = 1 + 2 * 3;
	a = (1 + 2) * 3;
	a = -a + !a - ~a;
	a = a << 2 | a >> 1 & 3 ^ 4;
	a = a && 1 || 0;
	a = a == 1 != 0;
	int* p = &a;
	a = *p + p[0];
	a += sizeof(int);
	a++;
	--a;
	return a;
}`)
	if len(f.Decls) != 1 {
		t.Fatal("decl count wrong")
	}
}

func TestParseCommentsAndLiterals(t *testing.T) {
	f := parseOK(t, `
// line comment
/* block
   comment */
char c = 'x';
char nl = '\n';
int hex = 0xFF;
`)
	if len(f.Decls) != 3 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
	if f.Decls[2].(*VarDecl).Init.(*IntLit).V != 255 {
		t.Error("hex literal wrong")
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`int f( { }`, "expected"},
		{`struct s { int a }`, "';'"},
		{`int f() { if a) {} }`, "'('"},
		{`int f() { return 1 }`, "';'"},
		{`int x = "str`, "unterminated string"},
		{`/* never closed`, "unterminated block comment"},
		{`int f() { int 5; }`, "declarator name"},
	}
	for _, c := range cases {
		_, err := Parse("e.c", c.src)
		if err == nil {
			t.Errorf("%q accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), "e.c:") {
			t.Errorf("error lacks position: %v", err)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q missing %q", err, c.frag)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := LexAll("t.c", `a += b -> c ... << >= && ++`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIdent, TokPlusAssign, TokIdent, TokArrow, TokIdent,
		TokEllipsis, TokShl, TokGe, TokAndAnd, TokPlusPlus, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
