// Package minic implements the Privagic source language: a C subset
// extended with the explicit secure-typing annotations of the paper —
// color(...) type qualifiers (Figure 1), and the entry, within and ignore
// function attributes (§6.2–§6.4). It compiles source text to the SSA IR
// of internal/ir, playing the role clang + LLVM bitcode emission plays in
// the paper's toolchain (Figure 5).
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokFloat
	TokChar
	TokString

	// Keywords.
	TokKwInt
	TokKwLong
	TokKwChar
	TokKwDouble
	TokKwVoid
	TokKwStruct
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwSizeof
	TokKwColor
	TokKwEntry
	TokKwWithin
	TokKwIgnore
	TokKwExtern
	TokKwStatic
	TokKwConst
	TokKwUnsigned
	TokKwNull

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
	TokArrow
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokLt
	TokGt
	TokLe
	TokGe
	TokEqEq
	TokNe
	TokAndAnd
	TokOrOr
	TokShl
	TokShr
	TokPlusPlus
	TokMinusMinus
	TokPlusAssign
	TokMinusAssign
	TokEllipsis
)

var keywords = map[string]TokKind{
	"int": TokKwInt, "long": TokKwLong, "char": TokKwChar,
	"double": TokKwDouble, "void": TokKwVoid, "struct": TokKwStruct,
	"if": TokKwIf, "else": TokKwElse, "while": TokKwWhile, "for": TokKwFor,
	"return": TokKwReturn, "break": TokKwBreak, "continue": TokKwContinue,
	"sizeof": TokKwSizeof, "color": TokKwColor, "entry": TokKwEntry,
	"within": TokKwWithin, "ignore": TokKwIgnore, "extern": TokKwExtern,
	"static": TokKwStatic, "const": TokKwConst, "unsigned": TokKwUnsigned,
	"NULL": TokKwNull,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Flt  float64
	Line int
	Col  int
}

// String returns a diagnostic form of the token.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokIdent, TokInt, TokFloat, TokString, TokChar:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a frontend diagnostic with a source position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}
