// Package netfaults is a fault-injecting TCP proxy for gray-failure
// testing: a Link sits between the cluster router and one shard's real
// listener and degrades the wire the way production networks do — added
// latency and jitter, bandwidth throttling, asymmetric blackholes (probe
// path up while the data path is dark, or the reverse), mid-message
// connection resets, and byte corruption. Faults are armed per traffic
// class, so a schedule can break exactly the path it means to break.
//
// The package deliberately knows nothing about memcached beyond one
// sniffable fact: the router's health prober opens connections whose
// first bytes are "version", while data connections open with
// get/set/delete. That single prefix check splits each accepted
// connection into the Probe or Data class for the rest of its life,
// which is what makes asymmetric partitions — the defining gray failure
// — expressible: version probes keep answering while every data chunk
// is blackholed.
//
// Like the other fault layers (internal/faults), a Link is seeded and
// reports everything it did through Counters, exported under the
// netfault. prefix of the metric catalogue.
package netfaults

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/obs"
)

// Class is the traffic class of one proxied connection, fixed at accept
// time by sniffing the first client bytes.
type Class int

const (
	// Data is everything that carries keys and values: get/set/delete.
	Data Class = iota
	// Probe is the router's health-check path (the version command).
	Probe
	nClasses
)

func (c Class) String() string {
	if c == Probe {
		return "probe"
	}
	return "data"
}

// Faults is the degradation armed on one (link, class) pair. The zero
// value is a clean wire. Fields compose: a link can be slow AND lossy
// AND corrupting at once.
type Faults struct {
	// Latency delays every forwarded chunk in both directions; Jitter
	// adds a seeded-uniform extra in [0, Jitter). One request/response
	// round trip therefore stretches by ≥ 2×Latency.
	Latency time.Duration
	Jitter  time.Duration

	// BytesPerSec throttles forwarding bandwidth (0 = unthrottled): a
	// chunk of n bytes is held n/BytesPerSec before delivery.
	BytesPerSec int

	// DropC2S / DropS2C blackhole one direction: bytes are consumed and
	// silently discarded, the connection stays open. Dropping only S2C
	// models "request delivered, answer lost" — the nastiest ack-loss
	// ambiguity the router must survive.
	DropC2S bool
	DropS2C bool

	// ResetEvery resets the connection on every Nth forwarded chunk
	// (counted per direction), after delivering only half of it — a
	// mid-message RST. 0 disables.
	ResetEvery int

	// CorruptEvery XORs one seeded-random byte of every Nth forwarded
	// chunk with CorruptXOR (default 0xFF) before delivery. 0 disables.
	// The protocol layer must surface this as a typed error, never a
	// wrong answer — that is precisely what the soak checks.
	CorruptEvery int
	CorruptXOR   byte
}

func (f Faults) clean() bool { return f == Faults{} }

// Config builds a Link.
type Config struct {
	// Target resolves the backing shard listener. Returning ok=false
	// (shard down) makes the proxy refuse the connection, like a closed
	// port. Resolved per accepted connection, so a respawned shard with
	// a new address is picked up without rebuilding the link.
	Target func() (addr string, ok bool)

	// Seed drives jitter magnitudes and corruption positions. Same seed,
	// same schedule of applied faults for a deterministic byte stream.
	Seed int64

	// Classify overrides the traffic-class sniffer (default: first bytes
	// "version" → Probe, else Data).
	Classify func(first []byte) Class

	// DialTimeout bounds the proxy→shard dial (default 1s).
	DialTimeout time.Duration
}

// Link is one fault-injecting proxy in front of one shard. Safe for
// concurrent use; fault arming is atomic per class and takes effect on
// the next forwarded chunk of every live connection.
type Link struct {
	cfg Config
	ln  net.Listener

	faults [nClasses]atomic.Pointer[Faults]

	rngMu sync.Mutex
	rng   *rand.Rand

	conns     atomic.Int64
	delayed   atomic.Int64
	dropped   atomic.Int64
	resets    atomic.Int64
	corrupted atomic.Int64

	closed atomic.Bool
	wg     sync.WaitGroup

	liveMu sync.Mutex
	live   map[net.Conn]struct{}
}

// NewLink starts a proxy listening on a fresh loopback port.
func NewLink(cfg Config) (*Link, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.Classify == nil {
		cfg.Classify = func(first []byte) Class {
			if bytes.HasPrefix(first, []byte("version")) {
				return Probe
			}
			return Data
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &Link{
		cfg:  cfg,
		ln:   ln,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		live: map[net.Conn]struct{}{},
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr is the proxy's listen address — what the router should be told
// the shard lives at.
func (l *Link) Addr() string { return l.ln.Addr().String() }

// SetFaults arms f on class (replacing whatever was armed). Arming the
// zero Faults heals the class.
func (l *Link) SetFaults(class Class, f Faults) {
	if class < 0 || class >= nClasses {
		return
	}
	if f.CorruptEvery > 0 && f.CorruptXOR == 0 {
		f.CorruptXOR = 0xFF
	}
	l.faults[class].Store(&f)
}

// Heal clears every armed fault on both classes.
func (l *Link) Heal() {
	for c := Class(0); c < nClasses; c++ {
		l.faults[c].Store(nil)
	}
}

// Close stops the listener, severs every proxied connection and waits
// for the pump goroutines — teardown never leaks a blocked forwarder.
func (l *Link) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := l.ln.Close()
	l.liveMu.Lock()
	for c := range l.live {
		c.Close()
	}
	l.liveMu.Unlock()
	l.wg.Wait()
	return err
}

func (l *Link) track(c net.Conn) bool {
	l.liveMu.Lock()
	defer l.liveMu.Unlock()
	if l.closed.Load() {
		return false
	}
	l.live[c] = struct{}{}
	return true
}

func (l *Link) untrack(c net.Conn) {
	l.liveMu.Lock()
	delete(l.live, c)
	l.liveMu.Unlock()
}

func (l *Link) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go l.serve(c)
	}
}

// sniffTimeout bounds how long a fresh connection may sit silent before
// classification gives up and drops it — a stuck dial-and-idle client
// must not pin a goroutine forever.
const sniffTimeout = 2 * time.Second

func (l *Link) serve(client net.Conn) {
	defer l.wg.Done()
	if !l.track(client) {
		client.Close()
		return
	}
	defer l.untrack(client)
	defer client.Close()

	// Classify on the first client bytes. The memcached protocol is
	// client-speaks-first, so this read always has something to wait for.
	buf := make([]byte, 4096)
	client.SetReadDeadline(time.Now().Add(sniffTimeout))
	n, err := client.Read(buf)
	if err != nil || n == 0 {
		return
	}
	client.SetReadDeadline(time.Time{})
	class := l.cfg.Classify(buf[:n])

	addr, ok := l.cfg.Target()
	if !ok {
		return // shard down: refuse, like a closed port
	}
	shard, err := net.DialTimeout("tcp", addr, l.cfg.DialTimeout)
	if err != nil {
		return
	}
	if !l.track(shard) {
		shard.Close()
		return
	}
	defer l.untrack(shard)
	defer shard.Close()

	l.conns.Add(1)

	// The sniffed bytes are the first client→shard chunk; they go
	// through the same fault pipeline as everything after them.
	c2s := &pipe{link: l, class: class, src: client, dst: shard, c2s: true}
	s2c := &pipe{link: l, class: class, src: shard, dst: client, c2s: false}
	if !c2s.forward(buf[:n]) {
		return
	}
	done := make(chan struct{}, 2)
	go func() { c2s.run(buf); done <- struct{}{} }()
	go func() { s2c.run(make([]byte, 4096)); done <- struct{}{} }()
	// When either direction dies, sever both: a half-open proxy
	// connection would stall the peer instead of erroring it.
	<-done
}

// pipe forwards one direction of one proxied connection, applying the
// currently armed faults chunk by chunk. A chunk is one Read's worth of
// bytes — on loopback with the small memcached protocol, one request or
// response line lands in one chunk, so per-chunk faults read as
// per-message faults.
type pipe struct {
	link    *Link
	class   Class
	src     net.Conn
	dst     net.Conn
	c2s     bool
	nChunks int
}

func (p *pipe) run(buf []byte) {
	for {
		n, err := p.src.Read(buf)
		if n > 0 {
			if !p.forward(buf[:n]) {
				return
			}
		}
		if err != nil {
			// Propagate EOF/reset to the other side.
			p.dst.Close()
			p.src.Close()
			return
		}
	}
}

// forward delivers one chunk through the fault pipeline. Returns false
// when the connection was reset or the write failed.
func (p *pipe) forward(chunk []byte) bool {
	l := p.link
	p.nChunks++
	f := l.faults[p.class].Load()
	if f != nil && !f.clean() {
		// Mid-message reset: deliver half, then sever both directions.
		if f.ResetEvery > 0 && p.nChunks%f.ResetEvery == 0 {
			half := chunk[:len(chunk)/2]
			if len(half) > 0 {
				p.dst.Write(half)
			}
			l.resets.Add(1)
			p.dst.Close()
			p.src.Close()
			return false
		}
		// Directional blackhole: consume silently, connection stays up.
		if (p.c2s && f.DropC2S) || (!p.c2s && f.DropS2C) {
			l.dropped.Add(1)
			return true
		}
		// Latency, jitter and bandwidth compose into one hold.
		var hold time.Duration
		if f.Latency > 0 {
			hold += f.Latency
		}
		if f.Jitter > 0 {
			l.rngMu.Lock()
			hold += time.Duration(l.rng.Int63n(int64(f.Jitter)))
			l.rngMu.Unlock()
		}
		if f.BytesPerSec > 0 {
			hold += time.Duration(int64(len(chunk)) * int64(time.Second) / int64(f.BytesPerSec))
		}
		if hold > 0 {
			l.delayed.Add(1)
			time.Sleep(hold)
			if l.closed.Load() {
				return false
			}
		}
		// Byte corruption: flip one seeded-random byte in place.
		if f.CorruptEvery > 0 && p.nChunks%f.CorruptEvery == 0 {
			l.rngMu.Lock()
			i := l.rng.Intn(len(chunk))
			l.rngMu.Unlock()
			chunk[i] ^= f.CorruptXOR
			l.corrupted.Add(1)
		}
	}
	_, err := p.dst.Write(chunk)
	return err == nil
}

// Counters reports the link's activity (CounterSource shape; snapshots
// show these under the netfault. prefix).
func (l *Link) Counters() map[string]int64 {
	return map[string]int64{
		"conns":            l.conns.Load(),
		"delayed_chunks":   l.delayed.Load(),
		"dropped_chunks":   l.dropped.Load(),
		"resets":           l.resets.Load(),
		"corrupted_chunks": l.corrupted.Load(),
	}
}

// Group aggregates the links of one proxied cluster so a single metric
// source covers every shard's wire.
type Group struct {
	mu    sync.Mutex
	links []*Link
}

// NewGroup collects links into one closable, registrable unit.
func NewGroup(links ...*Link) *Group {
	return &Group{links: links}
}

// Links returns the member links, shard-indexed as passed to NewGroup.
func (g *Group) Links() []*Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Link(nil), g.links...)
}

// Close closes every member link.
func (g *Group) Close() {
	for _, l := range g.Links() {
		l.Close()
	}
}

// Counters sums the member links' counters.
func (g *Group) Counters() map[string]int64 {
	out := map[string]int64{}
	for _, l := range g.Links() {
		for k, v := range l.Counters() {
			out[k] += v
		}
	}
	return out
}

// RegisterMetrics folds the group's counters into reg under the
// netfault. prefix (the netfault.* block of the metric catalogue).
func (g *Group) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterSource("netfault", g)
}

var (
	_ obs.CounterSource = (*Link)(nil)
	_ obs.CounterSource = (*Group)(nil)
)
