package netfaults

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer is a minimal client-speaks-first backend: every received
// chunk is echoed back verbatim. Enough to observe what the proxy did to
// each direction.
type echoServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

func newTestLink(t *testing.T, backend string) *Link {
	t.Helper()
	l, err := NewLink(Config{
		Seed:   1,
		Target: func() (string, bool) { return backend, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and reads one echoed chunk back (with deadline).
func roundTrip(t *testing.T, c net.Conn, msg string, deadline time.Duration) (string, error) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	c.SetReadDeadline(time.Now().Add(deadline))
	buf := make([]byte, 4096)
	n, err := c.Read(buf)
	return string(buf[:n]), err
}

// TestCleanPassthrough: no faults armed, bytes flow unchanged both ways.
func TestCleanPassthrough(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	c := dial(t, l.Addr())
	got, err := roundTrip(t, c, "get foo\r\n", time.Second)
	if err != nil || got != "get foo\r\n" {
		t.Fatalf("roundTrip = %q, %v; want clean echo", got, err)
	}
	if n := l.Counters()["conns"]; n != 1 {
		t.Fatalf("conns = %d, want 1", n)
	}
}

// TestLatencyInjection: armed latency stretches the round trip by at
// least 2×Latency (one hold per direction).
func TestLatencyInjection(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	l.SetFaults(Data, Faults{Latency: 30 * time.Millisecond})
	c := dial(t, l.Addr())
	start := time.Now()
	if _, err := roundTrip(t, c, "get foo\r\n", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("round trip %v, want ≥ 60ms under 30ms/direction latency", elapsed)
	}
	if l.Counters()["delayed_chunks"] < 2 {
		t.Fatalf("delayed_chunks = %d, want ≥ 2", l.Counters()["delayed_chunks"])
	}
}

// TestAsymmetricBlackhole: data class blackholed S2C while the probe
// class keeps answering — the defining gray failure.
func TestAsymmetricBlackhole(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	l.SetFaults(Data, Faults{DropS2C: true})

	probe := dial(t, l.Addr())
	if got, err := roundTrip(t, probe, "version\r\n", time.Second); err != nil || got != "version\r\n" {
		t.Fatalf("probe path broken: %q, %v", got, err)
	}

	data := dial(t, l.Addr())
	if _, err := roundTrip(t, data, "get foo\r\n", 50*time.Millisecond); err == nil {
		t.Fatal("data response delivered through an S2C blackhole")
	}
	if l.Counters()["dropped_chunks"] == 0 {
		t.Fatal("no dropped chunks counted")
	}
}

// TestCorruption: a corrupted chunk reaches the server with a flipped
// byte; the connection itself stays healthy. The assertion is on what
// the server received (the C2S flip is always visible there) rather
// than the echoed bytes — the S2C pass corrupts again on the way back,
// and for some (seed, length) pairs the two flips land on the same
// index and cancel.
func TestCorruption(t *testing.T) {
	var mu sync.Mutex
	var received []byte
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4096)
		n, _ := c.Read(buf)
		mu.Lock()
		received = append([]byte(nil), buf[:n]...)
		mu.Unlock()
		c.Write(buf[:n])
	}()

	l := newTestLink(t, ln.Addr().String())
	l.SetFaults(Data, Faults{CorruptEvery: 1})
	c := dial(t, l.Addr())
	msg := "get aaaaaaaaaaaaaaaa\r\n"
	if _, err := roundTrip(t, c, msg, time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := string(received)
	mu.Unlock()
	if got == msg {
		t.Fatalf("request survived C2S corruption unchanged: %q", got)
	}
	if len(got) != len(msg) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(msg))
	}
	if l.Counters()["corrupted_chunks"] == 0 {
		t.Fatal("no corrupted chunks counted")
	}
}

// TestMidMessageReset: ResetEvery severs the connection after a partial
// delivery; the client sees a hard error, not a stall.
func TestMidMessageReset(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	l.SetFaults(Data, Faults{ResetEvery: 1})
	c := dial(t, l.Addr())
	c.Write([]byte("get foo\r\n"))
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 4096)
	// The reset fires on the first (sniffed) C2S chunk: half is
	// delivered, then both sides are severed — the read must error.
	for {
		if _, err := c.Read(buf); err != nil {
			break
		}
	}
	if l.Counters()["resets"] == 0 {
		t.Fatal("no resets counted")
	}
}

// TestTargetDownRefuses: a Target reporting down closes the client
// connection instead of forwarding.
func TestTargetDownRefuses(t *testing.T) {
	s := newEchoServer(t)
	up := true
	var mu sync.Mutex
	l, err := NewLink(Config{
		Seed: 1,
		Target: func() (string, bool) {
			mu.Lock()
			defer mu.Unlock()
			return s.ln.Addr().String(), up
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	mu.Lock()
	up = false
	mu.Unlock()
	c := dial(t, l.Addr())
	if _, err := roundTrip(t, c, "get foo\r\n", 500*time.Millisecond); err == nil {
		t.Fatal("request served while target down")
	}

	mu.Lock()
	up = true
	mu.Unlock()
	c2 := dial(t, l.Addr())
	if got, err := roundTrip(t, c2, "get foo\r\n", time.Second); err != nil || got != "get foo\r\n" {
		t.Fatalf("recovered target not served: %q, %v", got, err)
	}
}

// TestHealClearsFaults: Heal restores a clean wire on a live link.
func TestHealClearsFaults(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	l.SetFaults(Data, Faults{DropS2C: true})
	l.Heal()
	c := dial(t, l.Addr())
	if got, err := roundTrip(t, c, "get foo\r\n", time.Second); err != nil || got != "get foo\r\n" {
		t.Fatalf("healed link still faulty: %q, %v", got, err)
	}
}

// TestBandwidthThrottle: a throttled link holds a chunk proportionally
// to its size.
func TestBandwidthThrottle(t *testing.T) {
	s := newEchoServer(t)
	l := newTestLink(t, s.ln.Addr().String())
	l.SetFaults(Data, Faults{BytesPerSec: 10_000}) // 1000 bytes ≈ 100ms
	c := dial(t, l.Addr())
	msg := strings.Repeat("x", 1000)
	start := time.Now()
	if _, err := roundTrip(t, c, msg, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("1000-byte round trip took %v under a 10kB/s throttle, want ≥ 150ms", elapsed)
	}
}

// TestGroupAggregates: group counters sum member links.
func TestGroupAggregates(t *testing.T) {
	s := newEchoServer(t)
	l1 := newTestLink(t, s.ln.Addr().String())
	l2 := newTestLink(t, s.ln.Addr().String())
	g := NewGroup(l1, l2)
	for _, l := range g.Links() {
		c := dial(t, l.Addr())
		if _, err := roundTrip(t, c, "get foo\r\n", time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if n := g.Counters()["conns"]; n != 2 {
		t.Fatalf("group conns = %d, want 2", n)
	}
}

// TestCloseSeversLiveConns: Close must not leave a pump blocked — a
// client mid-conversation sees its connection die promptly.
func TestCloseSeversLiveConns(t *testing.T) {
	s := newEchoServer(t)
	l, err := NewLink(Config{Seed: 1, Target: func() (string, bool) { return s.ln.Addr().String(), true }})
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, l.Addr())
	if _, err := roundTrip(t, c, "get foo\r\n", time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { l.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked with a live proxied connection")
	}
	c.SetReadDeadline(time.Now().Add(time.Second))
	var buf [16]byte
	if _, err := c.Read(buf[:]); err == nil {
		t.Fatal("severed connection still readable")
	}
}
