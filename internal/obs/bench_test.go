package obs

import (
	"sync/atomic"
	"testing"
)

// BenchmarkRecordBatched is the tracer's high-volume hot path: a batched
// transport instant, which reuses the shard's last clock sample for all
// but one in tsBatch events.
func BenchmarkRecordBatched(b *testing.B) {
	t := NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record(EvSend, 3, 7, 1, 2, 9)
	}
}

// BenchmarkRecordFresh is the unbatched path every rare kind takes: a
// fresh clock read per event.
func BenchmarkRecordFresh(b *testing.B) {
	t := NewTracer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Record(EvAbort, 3, 7, 1, 2, 9)
	}
}

// BenchmarkRecordParallel hammers one tracer from all procs on distinct
// workers (distinct shards): the no-shared-state claim in the package doc
// is this benchmark staying close to the serial one.
func BenchmarkRecordParallel(b *testing.B) {
	t := NewTracer(4096)
	var next atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		w := int(next.Add(1))
		for pb.Next() {
			t.Record(EvSend, w, 7, 1, 2, 9)
		}
	})
}
