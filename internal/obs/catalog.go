package obs

// MetricDef is one row of the metric catalogue: the machine-readable twin
// of the table in OBSERVABILITY.md. The docmetric analyzer in
// internal/lint cross-checks this literal against both the document and
// every registration call site, so a metric cannot ship undocumented and
// a documented metric cannot silently stop being exported.
type MetricDef struct {
	Name      string // snapshot key (sources contribute prefix.key)
	Type      string // "counter", "gauge", or "histogram"
	Unit      string // "1" for dimensionless counts, else e.g. "us", "items"
	Subsystem string // owning package
	Help      string // one-line semantics
}

// Catalog enumerates every metric the runtime can export. Keep it a pure
// literal: docmetric parses it with go/ast, not by executing it.
var Catalog = []MetricDef{
	// prt supervision (gauges over supCounters in internal/prt/supervise.go).
	{Name: "prt.rejected_spawns", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "spawn messages refused at the admit gate (bad stamp, stale epoch, unknown chunk)"},
	{Name: "prt.rejected_conts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "continuation messages refused at the admit gate"},
	{Name: "prt.hostile_spawns", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "forged spawn messages (authStamp mismatch) dropped before decode"},
	{Name: "prt.hostile_conts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "forged continuation messages dropped before decode"},
	{Name: "prt.hostile_other", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "forged messages of any other kind dropped before decode"},
	{Name: "prt.dropped_stale", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "messages from a fenced-off epoch discarded (admit gate, stream reset, pending prune)"},
	{Name: "prt.dropped_duplicates", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "redelivered messages deduplicated by per-stream sequence"},
	{Name: "prt.aborts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "chunk executions that panicked and were converted to EnclaveAbort"},
	{Name: "prt.timeouts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "waits that exceeded the quiescence window and returned ErrWaitTimeout"},
	{Name: "prt.drained", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "messages drained during graceful worker shutdown"},
	{Name: "prt.restarts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "worker restarts (crash recovery or stuck-worker watchdog)"},
	{Name: "prt.redelivered", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "in-flight messages re-enqueued across a worker restart"},
	{Name: "prt.backpressure_waits", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "sends that blocked on a full bounded queue"},
	{Name: "prt.payload_tampered", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "messages whose FNV-1a payload tag failed verification at the admit gate"},
	{Name: "prt.stalls", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "watchdog detections of a worker making no progress"},

	// prt recovery journal (gauges over journal counters in internal/prt/journal.go).
	{Name: "prt.journal.spawns", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "spawns journaled for deterministic replay"},
	{Name: "prt.journal.commits", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "effect transactions committed before Done was published"},
	{Name: "prt.journal.replays", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "chunk re-executions driven from the journal after a crash"},
	{Name: "prt.journal.giveups", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "spawns abandoned after the replay budget was exhausted"},

	// prt transport queues (gauges aggregated across worker queues).
	{Name: "prt.queue.depth", Type: "gauge", Unit: "items", Subsystem: "queue", Help: "messages currently resident across all worker queues"},
	{Name: "prt.queue.enqueues", Type: "gauge", Unit: "1", Subsystem: "queue", Help: "total messages enqueued across all worker queues"},
	{Name: "prt.queue.dequeues", Type: "gauge", Unit: "1", Subsystem: "queue", Help: "total messages dequeued across all worker queues"},
	{Name: "prt.queue.parks", Type: "gauge", Unit: "1", Subsystem: "queue", Help: "consumer park-sleeps while waiting on an empty queue"},
	{Name: "prt.queue.full_waits", Type: "gauge", Unit: "1", Subsystem: "queue", Help: "producer waits on a full bounded queue"},

	// prt latency histograms (count/sum/max exported as name.count etc).
	{Name: "prt.chunk_exec_us", Type: "histogram", Unit: "us", Subsystem: "prt", Help: "wall time of one chunk execution, spawn accept to Done publish"},
	{Name: "prt.wait_block_us", Type: "histogram", Unit: "us", Subsystem: "prt", Help: "wall time a worker spent blocked in waitTag/join before the tag arrived"},

	// interp effect transactions and boundary defense.
	{Name: "interp.effect_commits", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "effect-transaction overlays committed to backing memory"},
	{Name: "interp.effect_discards", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "effect-transaction overlays discarded on abort"},
	{Name: "interp.boundary.snapshot_copyins", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "U words copied into enclave-private snapshots at barrier entry"},
	{Name: "interp.boundary.snapshot_served", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "U reads served from a snapshot instead of live U memory"},
	{Name: "interp.boundary.trusted_loads", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "loads that resolved to S memory and bypassed the defense path"},
	{Name: "interp.boundary.unsafe_loads", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "loads that touched live U memory under relaxed mode"},
	{Name: "interp.boundary.sanitize_checks", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "U-sourced pointers validated against the memory map"},
	{Name: "interp.boundary.violations", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "sanitization failures surfaced as ErrIagoViolation"},

	// fault injection (CounterSource under the "inject" prefix).
	{Name: "inject.delivered", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages the injector passed through unmodified"},
	{Name: "inject.dropped", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages the injector silently dropped"},
	{Name: "inject.duplicated", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages the injector delivered twice"},
	{Name: "inject.delayed", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages the injector held back before delivery"},
	{Name: "inject.reordered", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages the injector delivered out of order"},
	{Name: "inject.forged", Type: "counter", Unit: "1", Subsystem: "faults", Help: "hostile messages the injector fabricated"},
	{Name: "inject.crashes", Type: "counter", Unit: "1", Subsystem: "faults", Help: "enclave crashes the injector forced mid-chunk"},
	{Name: "inject.retransmitted", Type: "counter", Unit: "1", Subsystem: "faults", Help: "messages re-sent by the injector's retransmit schedule"},

	// U-memory mutator (CounterSource under the "mutate" prefix).
	{Name: "mutate.flips", Type: "counter", Unit: "1", Subsystem: "faults", Help: "double-fetch word flips inside the TOCTOU window"},
	{Name: "mutate.smashes", Type: "counter", Unit: "1", Subsystem: "faults", Help: "persistent pointer smashes of live split-struct slots"},
	{Name: "mutate.payload_mutations", Type: "counter", Unit: "1", Subsystem: "faults", Help: "in-place rewrites of message payload words"},
	{Name: "mutate.restores", Type: "counter", Unit: "1", Subsystem: "faults", Help: "mutated words restored after the victim read"},

	// memcached server.
	{Name: "memcached.shed_ops", Type: "gauge", Unit: "1", Subsystem: "memcached", Help: "operations refused with SERVER_ERROR busy under backpressure"},
	{Name: "memcached.inflight", Type: "gauge", Unit: "items", Subsystem: "memcached", Help: "operations currently admitted and executing"},
	{Name: "memcached.get_hits", Type: "gauge", Unit: "1", Subsystem: "memcached", Help: "GET operations that found the key"},
	{Name: "memcached.get_misses", Type: "gauge", Unit: "1", Subsystem: "memcached", Help: "GET operations that missed"},
	{Name: "memcached.evictions", Type: "gauge", Unit: "1", Subsystem: "memcached", Help: "items evicted by the LRU store"},
	{Name: "memcached.curr_items", Type: "gauge", Unit: "items", Subsystem: "memcached", Help: "items currently resident in the store"},

	// cluster router and shard lifecycle (gauges over the router's own
	// atomics in internal/cluster; see DESIGN.md §14).
	{Name: "cluster.routes", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "operations routed to an owning shard"},
	{Name: "cluster.retries", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "operation attempts re-sent after a transient failure (backoff applied)"},
	{Name: "cluster.sheds", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "operations surfaced to the caller as busy after the retry budget"},
	{Name: "cluster.route_errors", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "operations surfaced to the caller as transport errors after the retry budget"},
	{Name: "cluster.stale_rejects", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "gets whose stored ownership generation predates the owner's tenure, served as misses"},
	{Name: "cluster.failovers", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "shards declared dead: epoch fenced, key ranges re-routed to survivors"},
	{Name: "cluster.readmits", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "respawned shards readmitted to the ring at a fresh epoch"},
	{Name: "cluster.probes", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "health probes sent (version command, outside admission control)"},
	{Name: "cluster.probe_failures", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "health probes that errored or timed out"},
	{Name: "cluster.shards_up", Type: "gauge", Unit: "items", Subsystem: "cluster", Help: "shards currently in the ring"},
	{Name: "cluster.ring_generation", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "ownership generation, bumped on every ring membership change"},
	{Name: "cluster.failover_detect_us", Type: "histogram", Unit: "us", Subsystem: "cluster", Help: "time from first observed failure of a shard to its fence"},

	// cluster gray-failure defenses (gauges over router atomics; DESIGN.md §15).
	{Name: "cluster.demotions", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "slow-but-alive shards demoted out of the ring by latency health scoring"},
	{Name: "cluster.promotions", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "demoted shards promoted back after their data-path RTT recovered"},
	{Name: "cluster.breaker_trips", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "per-shard circuit breakers tripped open by consecutive data-path failures"},
	{Name: "cluster.breaker_fastfails", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "operation attempts refused instantly by an open breaker (no wire I/O)"},
	{Name: "cluster.hedges", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "hedge gets launched after the adaptive delay with no primary response"},
	{Name: "cluster.hedge_wins", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "hedged gets where the hedge answered before the primary"},
	{Name: "cluster.corrupt_rejects", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "gets whose end-to-end integrity tag failed verification, purged and served as misses"},
	{Name: "cluster.demote_detect_us", Type: "histogram", Unit: "us", Subsystem: "cluster", Help: "time from a shard's first over-threshold latency evaluation to its demotion"},
	{Name: "cluster.data_rtt_us", Type: "histogram", Unit: "us", Subsystem: "cluster", Help: "data-path round-trip time of successful shard operations"},

	// cluster replication: replica write-through, hinted handoff, and
	// anti-entropy readmission (gauges over router atomics; DESIGN.md §16).
	{Name: "repl.replica_writes", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "backup-member setx writes completed by the replicated write path"},
	{Name: "repl.replica_write_errors", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "backup-member setx attempts that failed (the write retries until all members hold it)"},
	{Name: "repl.lww_refused", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "setx attempts refused by a member's last-writer-wins register (a newer stamp was present)"},
	{Name: "repl.fallback_reads", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "gets answered by a non-primary replica after the primary was skipped, erred, or trusted-missed"},
	{Name: "repl.read_repairs", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "divergent replicas repaired at read time with the served value (CAS-guarded)"},
	{Name: "repl.repair_conflicts", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "read-repairs that stood down because a newer write won the CAS race"},
	{Name: "repl.tombstones", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "deletes replicated as stamped tombstones across the replica set"},
	{Name: "repl.hints_queued", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "writes queued as hinted handoff for a down replica-set member"},
	{Name: "repl.hint_overflows", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "hint-queue overflows (queue discarded, shard flagged for forced full sync)"},
	{Name: "repl.hints_drained", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "queued hints replayed into a readmitting shard before ring entry"},
	{Name: "repl.hints_discarded", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "hints dropped by queue overflow (recovered by the forced full sync, never silently)"},
	{Name: "repl.syncs", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "anti-entropy syncs completed (shard entered the ring with full trust)"},
	{Name: "repl.sync_retries", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "sync passes restarted because ring membership moved or the hint queue overflowed mid-sync"},
	{Name: "repl.sync_segments", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "ring segments digest-compared during anti-entropy syncs"},
	{Name: "repl.sync_divergent", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "segment/source pairs that diverged (or were force-pulled) and were copied key by key"},
	{Name: "repl.sync_keys", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "keys copied into an entering shard by anti-entropy pulls"},
	{Name: "repl.full_syncs", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "syncs that ran with the digest shortcut forbidden after a hint-queue overflow"},
	{Name: "repl.stamp_clamps", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "writes whose per-key stamp saturated at the stamp-space ceiling (strict LWW ordering lost for that key; the router needs a wider stamp split)"},
	{Name: "repl.stamps_pruned", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "per-key stamp-oracle entries reclaimed by the generation-floor sweep (redundant below the current ring-generation floor)"},
	{Name: "repl.tombs_purged", Type: "gauge", Unit: "1", Subsystem: "cluster", Help: "tombstones purged from shard stores by the generation-floor sweep (each store records the floor so zombies below it cannot re-insert)"},
	{Name: "repl.sync_us", Type: "histogram", Unit: "us", Subsystem: "cluster", Help: "wall time of one completed anti-entropy sync, start to ring entry"},
	{Name: "repl.handoff_drain_us", Type: "histogram", Unit: "us", Subsystem: "cluster", Help: "wall time to replay one batch of queued hints into a readmitting shard"},

	// network fault proxy (CounterSource under the "netfault" prefix).
	{Name: "netfault.conns", Type: "counter", Unit: "1", Subsystem: "netfaults", Help: "connections accepted and proxied to the backing shard listener"},
	{Name: "netfault.delayed_chunks", Type: "counter", Unit: "1", Subsystem: "netfaults", Help: "forwarded chunks held back by injected latency or bandwidth throttling"},
	{Name: "netfault.dropped_chunks", Type: "counter", Unit: "1", Subsystem: "netfaults", Help: "forwarded chunks blackholed by a directional partition"},
	{Name: "netfault.resets", Type: "counter", Unit: "1", Subsystem: "netfaults", Help: "proxied connections reset mid-message by the fault schedule"},
	{Name: "netfault.corrupted_chunks", Type: "counter", Unit: "1", Subsystem: "netfaults", Help: "forwarded chunks with injected byte corruption"},

	// gray-failure chaos monkey (CounterSource under the "gray" prefix).
	{Name: "gray.latency_spikes", Type: "counter", Unit: "1", Subsystem: "faults", Help: "per-link latency/jitter spikes injected by the gray chaos schedule"},
	{Name: "gray.throttles", Type: "counter", Unit: "1", Subsystem: "faults", Help: "per-link bandwidth throttles injected"},
	{Name: "gray.partitions", Type: "counter", Unit: "1", Subsystem: "faults", Help: "asymmetric blackholes injected (probe path up/data path down or the reverse)"},
	{Name: "gray.resets_armed", Type: "counter", Unit: "1", Subsystem: "faults", Help: "mid-message reset faults armed on a link"},
	{Name: "gray.corruptions_armed", Type: "counter", Unit: "1", Subsystem: "faults", Help: "byte-corruption faults armed on a link"},
	{Name: "gray.heals", Type: "counter", Unit: "1", Subsystem: "faults", Help: "links restored to a clean fault-free state"},

	// shard chaos monkey (CounterSource under the "chaos" prefix).
	{Name: "chaos.kills", Type: "counter", Unit: "1", Subsystem: "faults", Help: "shards killed mid-run (connections severed, listener closed)"},
	{Name: "chaos.hangs", Type: "counter", Unit: "1", Subsystem: "faults", Help: "shards hung mid-run (responses stalled past client deadlines)"},
	{Name: "chaos.respawns", Type: "counter", Unit: "1", Subsystem: "faults", Help: "killed shards respawned with a cold store and a fresh epoch"},

	// crossing optimizer runtime effects (internal/passes/crossing;
	// gauges over interpreter counters, DESIGN.md §17).
	{Name: "cross.vector_sends", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "vectored cont messages sent (each replaces several adjacent reference-plan conts)"},
	{Name: "cross.vector_waits", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "vectored cont messages received and stashed for element reads"},
	{Name: "cross.elem_reads", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "element reads served from a stashed vectored cont (no message traffic)"},
	{Name: "cross.fused_calls", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "direct calls into a fused message-free unsafe chunk executed on the spawner's worker"},

	// execution engine (gauges over execCounters in internal/interp/interp.go).
	{Name: "exec.compile_us", Type: "gauge", Unit: "us", Subsystem: "interp", Help: "wall time SetEngine spent lowering the unit to closure-compiled steps"},
	{Name: "exec.compiled_dispatches", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "chunk and helper bodies executed on the compiled tier"},
	{Name: "exec.oracle_divergences", Type: "gauge", Unit: "1", Subsystem: "interp", Help: "differential-oracle failures (any nonzero value is a compiler bug caught in the act)"},

	// the tracer's own accounting.
	{Name: "obs.trace_events", Type: "gauge", Unit: "1", Subsystem: "obs", Help: "trace events recorded since the tracer was armed"},
	{Name: "obs.trace_dropped", Type: "gauge", Unit: "1", Subsystem: "obs", Help: "recorded events already overwritten by ring wraparound"},
}

// CatalogNames returns every catalogued metric name, for the docmetric
// analyzer and tests.
func CatalogNames() []string {
	out := make([]string, len(Catalog))
	for i, d := range Catalog {
		out[i] = d.Name
	}
	return out
}
