package obs

// NamedCounter binds a counter name to its lock-free loader. Components
// that expose a Counters() map (the CounterSource surface) build one
// static []NamedCounter at construction and snapshot it per call,
// instead of hand-writing the name→atomic plumbing three times over —
// the cluster router, the shard cluster, and the chaos monkeys all
// shared that copy-paste before this helper deduped them.
type NamedCounter struct {
	Name string
	Load func() int64
}

// SnapshotCounters materializes a counter list into the CounterSource
// map shape. Each Load is invoked exactly once; the result is a fresh
// map the caller owns.
func SnapshotCounters(list []NamedCounter) map[string]int64 {
	out := make(map[string]int64, len(list))
	for _, c := range list {
		out[c.Name] = c.Load()
	}
	return out
}
