// Package obs is the runtime observability layer: a low-overhead metrics
// registry and a structured event tracer, wired through the Privagic
// runtime stack (prt, interp, queue, faults, memcached) and documented in
// OBSERVABILITY.md at the repository root.
//
// The package is a leaf — it imports only the standard library — so every
// runtime package can depend on it without cycles. Two design rules keep
// it out of the hot path:
//
//   - Disabled means one branch. Every instrumentation point in the
//     runtime guards on a nil *Tracer / nil *Histogram, and every method
//     in this package is nil-receiver safe, so an uninstrumented run pays
//     a single pointer comparison per site and allocates nothing.
//
//   - Enabled means no shared contention. Counters created through the
//     registry are sharded across cache-line-padded cells (writers pick a
//     shard by worker index and never contend); the tracer shards its
//     ring buffers the same way. Most runtime metrics cost even less:
//     they are gauge closures over counters the subsystems already
//     maintain, so arming the registry adds no hot-path work at all —
//     only the Snapshot reader pays.
//
// The tracer records fixed-size events (kind, worker, chunk, tag, epoch,
// one free argument, timestamp, global sequence number) into per-shard
// ring buffers, keeps exact per-kind totals that survive ring wraparound
// (the reconciliation surface the nightly soak checks against registry
// counters), and exports either a Chrome trace_event JSON — loadable in
// chrome://tracing or https://ui.perfetto.dev — or a text flight-recorder
// dump of the last N events, which the runtime attaches to EnclaveAbort
// and wait-timeout errors so a failure ships its own history.
//
// The metric and event catalogue lives in catalog.go; the docmetric
// analyzer in internal/lint enforces that it, OBSERVABILITY.md, and the
// registration call sites across the repository agree on every name.
package obs
