package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterSource is the uniform counters surface shared with the fault
// layer (internal/faults declares the same shape): a bag of named
// monotonic counts. Registered sources are folded into Snapshot under
// their prefix.
type CounterSource interface {
	Counters() map[string]int64
}

// counterShards is the number of cache-line-padded cells per Counter;
// writers pick one by worker index so hot increments never contend.
const counterShards = 16

// counterCell pads each shard to its own cache line (64B on every target
// we run on) so two workers bumping adjacent shards do not false-share.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a sharded monotonic counter. Safe on a nil receiver.
type Counter struct {
	name   string
	shards [counterShards]counterCell
}

// Inc adds one on the given shard (any int — callers pass their worker
// index; it is reduced mod the shard count).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Add adds d on the given shard.
func (c *Counter) Add(shard int, d int64) {
	if c == nil {
		return
	}
	c.shards[uint(shard)%counterShards].n.Add(d)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Histogram is a power-of-two-bucket histogram (bucket i counts values v
// with 2^(i-1) <= v < 2^i; bucket 0 counts v <= 0 and v < 1). It keeps
// exact count/sum/max so snapshots can report averages and tails without
// retaining samples. Safe on a nil receiver.
type Histogram struct {
	name    string
	buckets [48]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	for b := v; b > 0 && idx < len(h.buckets)-1; b >>= 1 {
		idx++
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Stats returns the sample count, sum and maximum.
func (h *Histogram) Stats() (count, sum, max int64) {
	if h == nil {
		return 0, 0, 0
	}
	return h.count.Load(), h.sum.Load(), h.max.Load()
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs in
// ascending bound order.
func (h *Histogram) Buckets() (bounds, counts []int64) {
	if h == nil {
		return nil, nil
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			bounds = append(bounds, int64(1)<<i)
			counts = append(counts, n)
		}
	}
	return bounds, counts
}

// Registry holds the metric namespace of one instrumented instance.
// Subsystems register counters, gauge closures over counters they already
// maintain (zero added hot-path cost), histograms, and prefixed
// CounterSources; Snapshot flattens everything into name -> value. All
// methods are safe on a nil receiver — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]*Histogram
	sources  map[string]CounterSource
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]func() int64{},
		hists:    map[string]*Histogram{},
		sources:  map[string]CounterSource{},
	}
}

// Counter returns the sharded counter registered under name, creating it
// on first use. Returns nil (a safe no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a read-on-snapshot closure under name, replacing any
// previous registration. This is how existing subsystem counters surface
// without new hot-path work: the closure reads the atomic the subsystem
// already maintains.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a safe no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// RegisterSource folds src's Counters into snapshots under prefix+".".
// Re-registering a prefix replaces the previous source (an instance that
// re-arms its fault injector keeps one live source).
func (r *Registry) RegisterSource(prefix string, src CounterSource) {
	if r == nil || src == nil {
		return
	}
	r.mu.Lock()
	r.sources[prefix] = src
	r.mu.Unlock()
}

// Snapshot flattens the registry into name -> value: counters by their
// shard sum, gauges by calling their closure, histograms as
// name.count/name.sum/name.max, and each source's counters under its
// prefix.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	sources := make(map[string]CounterSource, len(r.sources))
	for k, v := range r.sources {
		sources[k] = v
	}
	r.mu.Unlock()

	out := map[string]int64{}
	for name, c := range counters {
		out[name] = c.Value()
	}
	for name, fn := range gauges {
		out[name] = fn()
	}
	for name, h := range hists {
		count, sum, max := h.Stats()
		out[name+".count"] = count
		out[name+".sum"] = sum
		out[name+".max"] = max
	}
	for prefix, src := range sources {
		for k, v := range src.Counters() {
			out[prefix+"."+k] = v
		}
	}
	return out
}

// Render formats a snapshot as sorted "name value" lines — what
// privagic-explain -metrics prints.
func Render(snap map[string]int64) string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-44s %d\n", k, snap[k])
	}
	return b.String()
}
