package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterShardedSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter must return the same instance per name")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 3, 100, 100, 5000} {
		h.Observe(v)
	}
	count, sum, max := h.Stats()
	if count != 6 || sum != 5204 || max != 5000 {
		t.Fatalf("Stats = (%d, %d, %d), want (6, 5204, 5000)", count, sum, max)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != len(counts) || len(bounds) == 0 {
		t.Fatalf("Buckets = %v %v", bounds, counts)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != count {
		t.Fatalf("bucket counts sum to %d, want %d", n, count)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending: %v", bounds)
		}
	}
}

type fakeSource map[string]int64

func (s fakeSource) Counters() map[string]int64 { return s }

func TestSnapshotAndSources(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(0, 3)
	r.Gauge("depth", func() int64 { return 7 })
	r.Histogram("lat").Observe(9)
	r.RegisterSource("inject", fakeSource{"delivered": 42})
	snap := r.Snapshot()
	want := map[string]int64{
		"hits": 3, "depth": 7,
		"lat.count": 1, "lat.sum": 9, "lat.max": 9,
		"inject.delivered": 42,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("snap[%q] = %d, want %d (snap: %v)", k, snap[k], v, snap)
		}
	}
	// Re-registering a prefix replaces the old source.
	r.RegisterSource("inject", fakeSource{"delivered": 1})
	if got := r.Snapshot()["inject.delivered"]; got != 1 {
		t.Fatalf("replaced source still reports %d", got)
	}
}

func TestRenderSorted(t *testing.T) {
	out := Render(map[string]int64{"b": 2, "a": 1})
	ai, bi := strings.Index(out, "a"), strings.Index(out, "b")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("render not sorted:\n%s", out)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc(0)
	c.Add(1, 5)
	if c.Value() != 0 {
		t.Fatal("nil-registry counter must stay zero")
	}
	h := r.Histogram("y")
	h.Observe(3)
	if n, _, _ := h.Stats(); n != 0 {
		t.Fatal("nil-registry histogram must stay empty")
	}
	r.Gauge("z", func() int64 { return 1 })
	r.RegisterSource("p", fakeSource{})
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}
