package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventKind discriminates structured trace events. The names rendered by
// String (and listed in OBSERVABILITY.md's trace-event table) are the
// export vocabulary: Chrome trace names, flight-recorder lines and the
// Counts map all use them.
type EventKind uint8

// Event kinds, one per runtime decision worth replaying after a failure.
// EvSpawn/EvSpawnEnd bracket a chunk execution (exported as Chrome B/E
// pairs, so chunks render as spans); everything else is an instant.
const (
	evNone EventKind = iota
	EvSpawn
	EvSpawnEnd
	EvSend
	EvWait
	EvJoin
	EvAbort
	EvTimeout
	EvRejectForged
	EvRejectPayload
	EvRejectContTag
	EvDropStale
	EvDropDuplicate
	EvParkReorder
	EvReplayCachedCont
	EvReplayCachedDone
	EvSuppressSpawn
	EvSuppressCont
	EvReplaySpawn
	EvGiveUp
	EvRestart
	EvStall
	EvRouteRetry
	EvRouteShed
	EvFailover
	EvReadmit
	EvProbeDown
	EvProbeUp
	EvShardKill
	EvShardRespawn
	EvDemote
	EvPromote
	EvBreakerOpen
	EvBreakerClose
	EvHedge
	EvHedgeWin
	EvCorruptReject
	EvReplHint
	EvReplDrain
	EvReplOverflow
	EvReplSyncStart
	EvReplSyncDone
	EvReplRepair
	EvReplFallback
	EvReplTombstone
	EvReplStampClamp
	EvReplPurge
	EvVecSend
	EvVecWait
	EvFusedCall
	EvDivergence
	nEventKinds
)

// kindNames maps kinds to their catalogue names (see OBSERVABILITY.md;
// the docmetric analyzer cross-checks this literal against the doc).
var kindNames = [nEventKinds]string{
	EvSpawn:            "spawn",
	EvSpawnEnd:         "spawn.end",
	EvSend:             "send",
	EvWait:             "wait",
	EvJoin:             "join",
	EvAbort:            "abort",
	EvTimeout:          "timeout",
	EvRejectForged:     "reject.forged",
	EvRejectPayload:    "reject.payload",
	EvRejectContTag:    "reject.cont_tag",
	EvDropStale:        "drop.stale",
	EvDropDuplicate:    "drop.duplicate",
	EvParkReorder:      "park.reorder",
	EvReplayCachedCont: "replay.cached_cont",
	EvReplayCachedDone: "replay.cached_done",
	EvSuppressSpawn:    "suppress.spawn",
	EvSuppressCont:     "suppress.cont",
	EvReplaySpawn:      "replay.spawn",
	EvGiveUp:           "replay.giveup",
	EvRestart:          "restart",
	EvStall:            "stall",
	EvRouteRetry:       "route.retry",
	EvRouteShed:        "route.shed",
	EvFailover:         "failover",
	EvReadmit:          "readmit",
	EvProbeDown:        "probe.down",
	EvProbeUp:          "probe.up",
	EvShardKill:        "shard.kill",
	EvShardRespawn:     "shard.respawn",
	EvDemote:           "health.demote",
	EvPromote:          "health.promote",
	EvBreakerOpen:      "breaker.open",
	EvBreakerClose:     "breaker.close",
	EvHedge:            "hedge",
	EvHedgeWin:         "hedge.win",
	EvCorruptReject:    "corrupt.reject",
	EvReplHint:         "repl.hint",
	EvReplDrain:        "repl.drain",
	EvReplOverflow:     "repl.overflow",
	EvReplSyncStart:    "repl.sync.start",
	EvReplSyncDone:     "repl.sync.done",
	EvReplRepair:       "repl.repair",
	EvReplFallback:     "repl.fallback",
	EvReplTombstone:    "repl.tombstone",
	EvReplStampClamp:   "repl.stamp_clamp",
	EvReplPurge:        "repl.purge",
	EvVecSend:          "cross.sendv",
	EvVecWait:          "cross.waitv",
	EvFusedCall:        "cross.fused_call",
	EvDivergence:       "exec.divergence",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one fixed-size trace record. Arg is kind-specific (documented
// per kind in OBSERVABILITY.md): a stream sequence number for transport
// events, the pending completion count for joins, the message kind for
// rejects.
type Event struct {
	Seq    uint64 // 1-based position within the recording shard's history
	TS     int64  // UnixNano; batched kinds may reuse a recent read (see tsBatch)
	Epoch  uint64
	Arg    int64
	Worker int32
	Chunk  int32
	Tag    int32
	Kind   EventKind
}

// traceShards is the number of independent ring buffers; writers pick one
// by worker index, so workers of different colors never contend on a
// shard lock. Must be a power of two.
const traceShards = 16

// DefaultTraceBuffer is the per-shard ring capacity used when a caller
// asks for a tracer without sizing it. Deliberately modest: a shard ring
// is a streaming write target, so its footprint (capacity x 48 bytes)
// competes with the workload for cache; 1024 events comfortably covers
// flight records and recent-window exports. Soak captures that need the
// whole history should size the tracer explicitly.
const DefaultTraceBuffer = 1024

// tsBatch bounds timestamp staleness for batched event kinds: within a
// shard, at most tsBatch-1 consecutive batched events reuse the last
// sampled wall clock before Record reads it again. Reading the clock is
// the single most expensive part of recording an event (~2/3 of the
// cost), and the high-volume transport instants don't need independent
// wall times — Seq already gives their exact order.
const tsBatch = 32

// tsBatched marks the kinds whose timestamps may be batched: the
// high-volume transport instants. Span boundaries (spawn/spawn.end) need
// real durations and failure events need real wall times for flight
// records, so everything else always samples fresh — those kinds are
// rare, so the fresh read costs nothing in aggregate.
var tsBatched = [nEventKinds]bool{
	EvSend: true,
	EvWait: true,
	EvJoin: true,
}

// traceShard is one ring: a mutex-guarded fixed buffer plus a write
// cursor that only ever grows (cursor mod capacity is the slot). Event
// counts and the timestamp-batching state live under the same lock the
// writer already holds, so they cost no extra atomics on the hot path.
type traceShard struct {
	mu     sync.Mutex
	buf    []Event
	pos    uint64
	lastTS int64
	tsLeft int
	counts [nEventKinds]int64
}

// Tracer is the structured flight recorder. All methods are safe on a nil
// receiver (no-ops), which is the disabled fast path. There is no global
// state on the record path — no shared sequence counter, no shared
// atomics — so workers never contend with each other: everything an event
// needs lives in its shard, under the shard lock.
type Tracer struct {
	shards [traceShards]traceShard
	mask   uint64
}

// NewTracer creates a tracer with the given per-shard ring capacity
// (rounded up to a power of two; <= 0 selects DefaultTraceBuffer).
func NewTracer(perShard int) *Tracer {
	if perShard <= 0 {
		perShard = DefaultTraceBuffer
	}
	capPow := 1
	for capPow < perShard {
		capPow <<= 1
	}
	t := &Tracer{mask: uint64(capPow - 1)}
	for i := range t.shards {
		t.shards[i].buf = make([]Event, capPow)
	}
	return t
}

// Record appends one event. The shard is picked by worker index, so the
// per-worker hot path takes an uncontended lock. Exports recover a global
// order from timestamps (ties broken by worker, then shard position);
// within a shard the order is exact. Timestamps of batched kinds (see
// tsBatched) may be stale by up to tsBatch-1 events within the shard.
func (t *Tracer) Record(kind EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	t.record(0, worker, kind, worker, chunk, tag, epoch, arg)
}

// RecordAt is Record with a caller-supplied wall clock (UnixNano): sites
// that already read the clock for other instrumentation — chunk latency
// histograms bracket the same execution the spawn span does — share the
// read instead of paying for a second one.
func (t *Tracer) RecordAt(ts int64, kind EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	t.record(ts, worker, kind, worker, chunk, tag, epoch, arg)
}

// RecordOn is Record with an explicit shard choice, for events observed
// on one worker's goroutine about another worker: a message send is
// recorded by the sender but describes the receiver. Sharding by the
// recording goroutine keeps the lock uncontended.
func (t *Tracer) RecordOn(shard int, kind EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	t.record(0, shard, kind, worker, chunk, tag, epoch, arg)
}

func (t *Tracer) record(ts int64, shard int, kind EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	if t == nil {
		return
	}
	sh := &t.shards[uint(shard)%traceShards]
	sh.mu.Lock()
	if ts == 0 {
		if tsBatched[kind] && sh.tsLeft > 0 {
			sh.tsLeft--
			ts = sh.lastTS
		} else {
			ts = time.Now().UnixNano()
			sh.lastTS = ts
			sh.tsLeft = tsBatch - 1
		}
	} else {
		// A caller-supplied clock is as fresh as one we'd read ourselves;
		// let it open a new batch window.
		sh.lastTS = ts
		sh.tsLeft = tsBatch - 1
	}
	sh.counts[kind]++
	sh.buf[sh.pos&t.mask] = Event{
		Seq:    sh.pos + 1,
		TS:     ts,
		Epoch:  epoch,
		Arg:    arg,
		Worker: int32(worker),
		Chunk:  int32(chunk),
		Tag:    int32(tag),
		Kind:   kind,
	}
	sh.pos++
	sh.mu.Unlock()
}

// Events snapshots every event still resident in the rings, ordered by
// timestamp (ties broken by worker then shard position; the stable sort
// over the shard-ordered snapshot makes the result deterministic).
// Overwritten events are gone — use Counts for exact totals.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := sh.pos
		if n > t.mask+1 {
			n = t.mask + 1
		}
		first := sh.pos - n
		for p := first; p < sh.pos; p++ {
			out = append(out, sh.buf[p&t.mask])
		}
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Counts returns exact per-kind event totals (catalogue name -> count),
// independent of ring wraparound. This is the reconciliation surface: the
// nightly soak asserts these totals against the metrics registry.
func (t *Tracer) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	var totals [nEventKinds]int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k := range sh.counts {
			totals[k] += sh.counts[k]
		}
		sh.mu.Unlock()
	}
	out := make(map[string]int64, int(nEventKinds))
	for k := EventKind(1); k < nEventKinds; k++ {
		if totals[k] > 0 {
			out[k.String()] = totals[k]
		}
	}
	return out
}

// Recorded is the total number of events ever recorded.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	var total int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		total += int64(sh.pos)
		sh.mu.Unlock()
	}
	return total
}

// Dropped is how many recorded events have been overwritten by ring
// wraparound and are no longer exportable.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var dropped int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if sh.pos > t.mask+1 {
			dropped += int64(sh.pos - (t.mask + 1))
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Dump renders the last n resident events as a text flight record, one
// line per event, timestamps relative to the first dumped event. This is
// the string the runtime attaches to aborts and wait timeouts.
func (t *Tracer) Dump(n int) string {
	if t == nil {
		return ""
	}
	evs := t.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	if len(evs) == 0 {
		return ""
	}
	base := evs[0].TS
	var b strings.Builder
	fmt.Fprintf(&b, "flight record (last %d of %d events):\n", len(evs), t.Recorded())
	for _, ev := range evs {
		fmt.Fprintf(&b, "  +%8.1fus #%-6d w%-2d %-18s", float64(ev.TS-base)/1e3, ev.Seq, ev.Worker, ev.Kind)
		if ev.Chunk != 0 {
			fmt.Fprintf(&b, " chunk=%d", ev.Chunk)
		}
		if ev.Tag != 0 {
			fmt.Fprintf(&b, " tag=%d", ev.Tag)
		}
		fmt.Fprintf(&b, " epoch=%d", ev.Epoch)
		if ev.Arg != 0 {
			fmt.Fprintf(&b, " arg=%d", ev.Arg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// format (the "JSON Array Format" with a traceEvents wrapper).
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	PID  int              `json:"pid"`
	TID  int32            `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeTrace is the export envelope.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the resident events as Chrome trace_event
// JSON: open the file in chrome://tracing or https://ui.perfetto.dev and
// each worker renders as a track (tid = color index), chunk executions as
// spans (spawn/spawn.end pairs), everything else as instants. With
// normalize set, wall-clock timestamps are replaced by the event's rank
// in the export — byte-for-byte deterministic for a deterministic
// schedule, which is what the golden-file test pins.
func (t *Tracer) WriteChromeTrace(w io.Writer, normalize bool) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer armed")
	}
	evs := t.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(evs))}
	var base int64
	if len(evs) > 0 {
		base = evs[0].TS
	}
	for i, ev := range evs {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Ph:   "i",
			S:    "t",
			PID:  1,
			TID:  ev.Worker,
			TS:   float64(ev.TS-base) / 1e3,
		}
		if normalize {
			ce.TS = float64(i)
		}
		switch ev.Kind {
		case EvSpawn:
			ce.Ph, ce.S = "B", ""
			ce.Name = fmt.Sprintf("chunk %d", ev.Chunk)
		case EvSpawnEnd:
			ce.Ph, ce.S = "E", ""
			ce.Name = fmt.Sprintf("chunk %d", ev.Chunk)
		}
		args := map[string]int64{"seq": int64(ev.Seq), "epoch": int64(ev.Epoch)}
		if ev.Chunk != 0 {
			args["chunk"] = int64(ev.Chunk)
		}
		if ev.Tag != 0 {
			args["tag"] = int64(ev.Tag)
		}
		if ev.Arg != 0 {
			args["arg"] = ev.Arg
		}
		ce.Args = args
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// EventKindNames returns the catalogue names of every event kind, in kind
// order (the docmetric analyzer and OBSERVABILITY.md enumerate the same
// list).
func EventKindNames() []string {
	out := make([]string, 0, int(nEventKinds)-1)
	for k := EventKind(1); k < nEventKinds; k++ {
		out = append(out, kindNames[k])
	}
	return out
}
