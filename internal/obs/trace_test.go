package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// script replays a small deterministic schedule into a tracer via
// RecordAt, so timestamps (and therefore exports) are fully scripted.
func script(t *Tracer) {
	ts := int64(1_000_000_000)
	at := func(d int64) int64 { return ts + d*1000 }
	t.RecordAt(at(0), EvSpawn, 1, 10, 0, 1, 0)
	t.RecordAt(at(1), EvSend, 2, 11, 0, 1, 1)
	t.RecordAt(at(2), EvWait, 1, 0, 7, 1, 0)
	t.RecordAt(at(3), EvSpawn, 2, 11, 0, 1, 0)
	t.RecordAt(at(4), EvSend, 1, 0, 7, 1, 2)
	t.RecordAt(at(5), EvSpawnEnd, 2, 11, 0, 1, 0)
	t.RecordAt(at(6), EvJoin, 1, 0, 0, 1, 1)
	t.RecordAt(at(7), EvAbort, 2, 11, 0, 1, 0)
	t.RecordAt(at(8), EvReplaySpawn, 2, 11, 0, 1, 1)
	t.RecordAt(at(9), EvSpawnEnd, 1, 10, 0, 1, 0)
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	const total = 8 + 5
	for i := 0; i < total; i++ {
		tr.Record(EvSend, 0, i, 0, 1, 0)
	}
	if got := tr.Recorded(); got != total {
		t.Fatalf("Recorded = %d, want %d", got, total)
	}
	if got := tr.Dropped(); got != total-8 {
		t.Fatalf("Dropped = %d, want %d", got, total-8)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("resident events = %d, want 8", len(evs))
	}
	// The resident window is the last 8 records: chunk ids 5..12.
	for i, ev := range evs {
		if want := int32(total - 8 + i); ev.Chunk != want {
			t.Fatalf("event %d chunk = %d, want %d", i, ev.Chunk, want)
		}
	}
	// Counts are exact despite wraparound.
	if got := tr.Counts()["send"]; got != total {
		t.Fatalf("Counts[send] = %d, want %d", got, total)
	}
}

func TestBufferSizeRoundsUp(t *testing.T) {
	tr := NewTracer(9) // rounds to 16
	for i := 0; i < 16; i++ {
		tr.Record(EvSend, 0, i, 0, 1, 0)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0 (capacity should round 9 up to 16)", got)
	}
}

func TestConcurrentWriters(t *testing.T) {
	tr := NewTracer(64)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(EvSend, w, i, 0, 1, 0)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != writers*per {
		t.Fatalf("Recorded = %d, want %d", got, writers*per)
	}
	if got := tr.Counts()["send"]; got != writers*per {
		t.Fatalf("Counts[send] = %d, want %d", got, writers*per)
	}
}

func TestTimestampBatching(t *testing.T) {
	tr := NewTracer(256)
	// Batched kinds on one shard share the first read's timestamp until
	// the batch window closes; a fresh-kind event reopens it.
	for i := 0; i < 10; i++ {
		tr.Record(EvSend, 0, i, 0, 1, 0)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TS != evs[0].TS {
			t.Fatalf("event %d ts %d != batch ts %d within one window", i, evs[i].TS, evs[0].TS)
		}
	}
	// A span boundary always samples fresh and never reuses a stale read.
	tr2 := NewTracer(256)
	tr2.RecordAt(42, EvSend, 0, 0, 0, 1, 0)
	tr2.Record(EvSpawn, 0, 1, 0, 1, 0)
	evs2 := tr2.Events()
	if evs2[len(evs2)-1].TS == 42 {
		t.Fatal("spawn reused a batched timestamp; span boundaries must sample fresh")
	}
}

func TestExportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	tr1 := NewTracer(64)
	script(tr1)
	tr2 := NewTracer(64)
	script(tr2)
	if err := tr1.WriteChromeTrace(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteChromeTrace(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same scripted schedule differ")
	}
}

func TestGoldenChromeTrace(t *testing.T) {
	tr := NewTracer(64)
	script(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (run with -update to regenerate)\ngot:\n%s", buf.String())
	}
	// Whatever the bytes, the export must stay parseable trace_event JSON
	// with balanced B/E span pairs.
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export does not parse as trace_event JSON: %v", err)
	}
	var opens, closes int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "B":
			opens++
		case "E":
			closes++
		}
	}
	if opens != 2 || closes != 2 {
		t.Fatalf("span phases B=%d E=%d, want 2/2", opens, closes)
	}
}

func TestDump(t *testing.T) {
	tr := NewTracer(64)
	script(tr)
	out := tr.Dump(4)
	if !strings.Contains(out, "last 4 of 10 events") {
		t.Fatalf("dump header wrong:\n%s", out)
	}
	for _, want := range []string{"abort", "replay.spawn", "spawn.end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " wait ") {
		t.Fatalf("dump should hold only the last 4 events:\n%s", out)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvSpawn, 0, 0, 0, 0, 0)
	tr.RecordAt(1, EvSpawn, 0, 0, 0, 0, 0)
	tr.RecordOn(0, EvSpawn, 0, 0, 0, 0, 0)
	if tr.Events() != nil || tr.Counts() != nil || tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Dump(8) != "" {
		t.Fatal("nil tracer reads must all be empty")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}, false); err == nil {
		t.Fatal("nil tracer export should error")
	}
}

func TestEventKindNames(t *testing.T) {
	names := EventKindNames()
	if len(names) != int(nEventKinds)-1 {
		t.Fatalf("EventKindNames has %d entries, want %d", len(names), int(nEventKinds)-1)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("kind %d has no name", i+1)
		}
		if seen[n] {
			t.Fatalf("duplicate kind name %q", n)
		}
		seen[n] = true
	}
	if fmt.Sprint(EventKind(200)) != "event(200)" {
		t.Fatal("unknown kinds should render as event(N)")
	}
}
