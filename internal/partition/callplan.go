package partition

import (
	"sort"

	"privagic/internal/ir"
	"privagic/internal/typing"
)

// bubbleUpColorSets gives functions with an empty color set that call
// colored functions the union of their callees' color sets, so that every
// call site has a well-defined set of chunks around it. (The paper's
// examples never hit this case because a caller always touches at least
// the colors of the values it passes; it matters for wrapper functions
// that only forward calls.)
func (p *Program) bubbleUpColorSets() {
	for changed := true; changed; {
		changed = false
		for _, pf := range p.sortedFuncs() {
			if !pf.Replicated {
				continue
			}
			union := map[ir.Color]bool{}
			pf.Spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
				call, ok := in.(*ir.Call)
				if !ok {
					return
				}
				if target := pf.Spec.CallTarget[call]; target != nil {
					for _, c := range p.Funcs[target].ColorSet {
						union[c] = true
					}
				} else if c := pf.Spec.InstrColor[in]; !c.IsFree() && !c.IsNone() {
					union[c] = true
				}
			})
			if len(union) == 0 {
				continue
			}
			pf.Replicated = false
			pf.ColorSet = sortColors(union)
			changed = true
		}
	}
}

func sortColors(set map[ir.Color]bool) []ir.Color {
	out := make([]ir.Color, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// planCalls computes the CallPlan of every direct local call in a function
// (§7.3.2).
func (p *Program) planCalls(pf *PartFunc) {
	spec := pf.Spec
	spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		call, ok := in.(*ir.Call)
		if !ok {
			return
		}
		tspec := spec.CallTarget[call]
		if tspec == nil {
			return // external, within, or indirect: handled natively
		}
		target := p.Funcs[tspec]
		plan := &CallPlan{
			Target:      target,
			Direct:      map[ir.Color]bool{},
			ResultColor: spec.ValueColor(call),
		}
		callerSet := pf.ColorSet
		if pf.Replicated {
			// Replicated callers only ever call replicated callees
			// (bubbleUpColorSets guarantees it): pure direct calls.
			p.Plans[call] = plan
			return
		}
		targetSet := target.ColorSet
		if target.Replicated {
			// Every caller chunk calls its private replica.
			for _, c := range callerSet {
				plan.Direct[c] = true
			}
			p.Plans[call] = plan
			return
		}

		inCaller := map[ir.Color]bool{}
		for _, c := range callerSet {
			inCaller[c] = true
		}
		inTarget := map[ir.Color]bool{}
		for _, c := range targetSet {
			inTarget[c] = true
		}
		var common []ir.Color
		for _, c := range targetSet {
			if inCaller[c] {
				common = append(common, c)
				plan.Direct[c] = true
			} else {
				plan.Spawns = append(plan.Spawns, c)
			}
		}

		// Owner: prefer the chunk of the call instruction's own color,
		// then a common color (it gets the result by direct call),
		// then any caller chunk.
		switch {
		case !spec.InstrColor[in].IsFree() && !spec.InstrColor[in].IsNone() && inCaller[spec.InstrColor[in]]:
			plan.Owner = spec.InstrColor[in]
			plan.ResultFromJoin = !inTarget[plan.Owner]
		case len(common) > 0:
			plan.Owner = preferNamed(common)
		case len(callerSet) > 0:
			plan.Owner = preferNamed(callerSet)
			plan.ResultFromJoin = true
		}

		// Free parameters forwarded to spawned chunks (§7.3.2
		// trampolines).
		for i, ac := range tspec.ArgColors {
			if ac.IsFree() {
				plan.FArgIdx = append(plan.FArgIdx, i)
			}
		}

		// Waiters: caller chunks that consume the call's result but do
		// not reach the callee by direct call.
		if p.resultUsedFreely(spec, call) {
			for _, c := range callerSet {
				if !inTarget[c] && c != plan.Owner {
					plan.Waiters = append(plan.Waiters, c)
				}
			}
			if !inTarget[plan.Owner] {
				plan.ResultFromJoin = true
			}
		}

		if len(plan.Waiters) > 0 {
			p.nextTag++
			plan.Tag = p.nextTag
		}

		// Hardened mode cannot ship Free values across enclaves in
		// cont messages (§7.3.2, §8).
		if p.Mode == typing.Hardened {
			for _, d := range plan.Spawns {
				for _, i := range plan.FArgIdx {
					if p.paramUsedInChunk(tspec, d, i) {
						p.errorf(in.InstrPos(),
							"hardened mode: spawned chunk %s.%s needs Free argument %d computed by the caller; "+
								"cont messages cannot carry Free values in hardened mode (paper §7.3.2)",
							tspec.Key, d, i)
					}
				}
			}
			if len(plan.Waiters) > 0 {
				p.errorf(in.InstrPos(),
					"hardened mode: chunks %v of @%s need the Free result of a call to @%s computed by another enclave (paper §7.3.2)",
					plan.Waiters, spec.Key, tspec.Key)
			}
		}
		p.Plans[call] = plan
	})
}

// preferNamed picks a deterministic owner, preferring enclave colors over
// U so the paper's Figure 7 shape (f.blue spawns g.red and g.U) holds.
func preferNamed(colors []ir.Color) ir.Color {
	var best ir.Color
	for _, c := range colors {
		if c.IsUntrusted() {
			continue
		}
		if best.IsNone() || c.String() < best.String() {
			best = c
		}
	}
	if best.IsNone() {
		return ir.U
	}
	return best
}

// resultUsedFreely reports whether the call's result flows into Free
// (replicated) instructions, which makes every chunk a potential consumer.
func (p *Program) resultUsedFreely(spec *typing.FuncSpec, call *ir.Call) bool {
	used := false
	spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		for _, op := range in.Ops() {
			if *op == ir.Value(call) {
				used = true
			}
		}
	})
	if _, isVoid := call.Type().(ir.VoidType); isVoid {
		return false
	}
	return used
}

// paramUsedInChunk reports whether chunk d of the target would reference
// parameter i: an instruction placed in d (or replicated, F) uses it.
func (p *Program) paramUsedInChunk(tspec *typing.FuncSpec, d ir.Color, i int) bool {
	if i >= len(tspec.Fn.Params) {
		return false
	}
	param := tspec.Fn.Params[i]
	found := false
	tspec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		c := tspec.InstrColor[in]
		if !(c.IsFree() || c.IsNone() || c == d) {
			return
		}
		for _, op := range in.Ops() {
			if *op == ir.Value(param) {
				found = true
			}
		}
	})
	return found
}
