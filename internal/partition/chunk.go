package partition

import (
	"fmt"

	"privagic/internal/ir"
	"privagic/internal/passes"
	"privagic/internal/typing"
)

// declareIntrinsics creates the runtime intrinsic declarations the chunk
// bodies call.
func (p *Program) declareIntrinsics() {
	mk := func(name string, ret ir.Type, params ...ir.Type) *ir.Function {
		ps := make([]*ir.Param, len(params))
		for i, t := range params {
			ps[i] = &ir.Param{PName: fmt.Sprintf("a%d", i), Typ: t}
		}
		fn := ir.NewFunction(name, ret, ps)
		fn.External = true
		fn.Variadic = true
		return fn
	}
	p.intrSpawn = mk(IntrSpawn, ir.Void, ir.I64, ir.I64)
	p.intrWait = mk(IntrWait, ir.I64)
	p.intrJoin = mk(IntrJoin, ir.I64, ir.I64)
	p.intrSend = mk(IntrSend, ir.Void, ir.I64, ir.I64)
	p.intrSendV = mk(IntrSendV, ir.Void, ir.I64, ir.I64)
	p.intrWaitV = mk(IntrWaitV, ir.I64, ir.I64)
	p.intrElem = mk(IntrElem, ir.I64, ir.I64, ir.I64)
}

// ensureChunk returns the chunk of pf for color c, creating its shell on
// first request (bodies are filled by buildChunk; shells break recursion
// cycles between mutually recursive functions).
func (p *Program) ensureChunk(pf *PartFunc, c ir.Color) *Chunk {
	if ch := pf.Chunks[c]; ch != nil {
		return ch
	}
	shell := ir.NewFunction(pf.Spec.Key+"."+c.String(), pf.Spec.Fn.RetTyp, clonedParams(pf.Spec.Fn))
	ch := &Chunk{ID: len(p.ChunkByID), Color: c, Fn: shell, Part: pf}
	p.ChunkByID = append(p.ChunkByID, ch)
	pf.Chunks[c] = ch
	if pf.Replicated {
		// Replicated functions grow chunks on demand; fill the body
		// immediately (no recursion risk through plans: replicated
		// callees only direct-call).
		p.fillChunkBody(ch)
	}
	return ch
}

func clonedParams(fn *ir.Function) []*ir.Param {
	out := make([]*ir.Param, len(fn.Params))
	for i, pr := range fn.Params {
		out[i] = &ir.Param{PName: pr.PName, Typ: pr.Typ, Color: pr.Color, Index: i, Pos: pr.Pos}
	}
	return out
}

// buildChunk creates and fills the chunk of pf for color c.
func (p *Program) buildChunk(pf *PartFunc, c ir.Color) *Chunk {
	ch := p.ensureChunk(pf, c)
	if len(ch.Fn.Blocks) == 0 {
		p.fillChunkBody(ch)
	}
	return ch
}

// fillChunkBody generates the chunk's code: the instructions of its color
// plus the replicated Free instructions (§7.3.1), with foreign-colored
// regions bypassed, call sites rewritten per their CallPlan, and the
// runtime intrinsics inserted.
func (p *Program) fillChunkBody(ch *Chunk) {
	spec := ch.Part.Spec
	c := ch.Color

	clone, vmap := ir.CloneFunction(spec.Fn, ch.Fn.FName)
	// Transplant the clone's body into the shell (the shell's params
	// must be the ones used by the body, so adopt the clone's).
	ch.Fn.Params = clone.Params
	ch.Fn.Blocks = clone.Blocks
	for _, b := range ch.Fn.Blocks {
		b.Func = ch.Fn
	}
	fn := ch.Fn
	fn.FName = clone.FName

	// Index: cloned instruction -> original instruction (for colors).
	// vmap only covers value-producing instructions, so map the rest by
	// the parallel block/instruction structure of the fresh clone.
	orig := map[ir.Instr]ir.Instr{}
	origVal := map[ir.Value]ir.Value{} // clone value -> original value
	for bi, ob := range spec.Fn.Blocks {
		cb := fn.Blocks[bi]
		for ii, oin := range ob.Instrs {
			orig[cb.Instrs[ii]] = oin
		}
	}
	for v, nv := range vmap {
		origVal[nv] = v
	}
	colorOfClone := func(in ir.Instr) ir.Color {
		if oi, ok := orig[in]; ok {
			return spec.InstrColor[oi]
		}
		return ir.F
	}

	// Step 1: bypass foreign-colored regions: a CondBr controlled by a
	// different color jumps straight to the joining point (Rule 4
	// regions contain only that color's instructions).
	spec.Fn.ComputeCFG()
	pdom := ir.PostDominators(spec.Fn)
	cloneBlockOf := map[*ir.Block]*ir.Block{}
	for i, ob := range spec.Fn.Blocks {
		cloneBlockOf[ob] = fn.Blocks[i]
	}
	for bi, ob := range spec.Fn.Blocks {
		cb := fn.Blocks[bi]
		term, ok := cb.Terminator().(*ir.CondBr)
		if !ok {
			continue
		}
		tc := colorOfClone(term)
		if tc.IsFree() || tc.IsNone() || tc == c {
			continue
		}
		join := pdom.Idom(ob)
		idx := cb.IndexOf(term)
		if join != nil {
			br := &ir.Br{Target: cloneBlockOf[join]}
			cb.Splice(idx, br)
		} else {
			// The foreign region never rejoins (it returns): this
			// chunk's control flow ends here with a dummy return.
			cb.Splice(idx, dummyRet(fn))
		}
	}
	fn.RemoveUnreachable()

	// Cross-chunk value transport (§7.3.2 generalizied to instruction
	// results): a Free-typed value produced by an instruction placed in
	// enclave P but consumed by other chunks travels in a cont message —
	// P sends after producing, each consumer chunk waits at the
	// producer's program point. The canonical case is the unsafe-memory
	// allocation of a split structure (§7.2) whose pointer every chunk
	// needs.
	transports := p.transportsOf(ch.Part)

	avail := func(v ir.Value) bool {
		ov, ok := origVal[v]
		if !ok {
			return true // constant / global / function reference
		}
		if oi, isInstr := ov.(ir.Instr); isInstr {
			pc := spec.InstrColor[oi]
			if pc.IsFree() || pc.IsNone() || pc == c {
				return true
			}
			// Transported values become available at the
			// producer's program point.
			return transports[oi] != nil && contains(transports[oi].Consumers, c)
		}
		vc := spec.ValueColor(ov)
		return vc.IsFree() || vc == c
	}

	// Step 2: rewrite call sites and filter instructions by color.
	for _, b := range fn.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			oi := orig[in]
			switch t := in.(type) {
			case *ir.Call:
				var plan *CallPlan
				if oc, ok := oi.(*ir.Call); ok {
					plan = p.Plans[oc]
				}
				if plan != nil {
					idx += p.rewriteCall(ch, b, idx, t, plan, avail) - 1
					continue
				}
				cc := colorOfClone(in)
				if cc.IsFree() || cc == c {
					idx += p.keepInstr(ch, b, idx, t, oi) - 1
					continue
				}
				idx += p.dropOrReceive(ch, b, idx, t, oi, transports) - 1
			case *ir.Ret:
				if t.Val != nil && !avail(t.Val) {
					t.Val = zeroConst(t.Val.Type())
				}
			case *ir.Br, *ir.CondBr:
				// Terminators survive filtering.
			default:
				cc := colorOfClone(in)
				if cc.IsFree() || cc == c {
					idx += p.keepInstr(ch, b, idx, in, oi) - 1
					continue
				}
				idx += p.dropOrReceive(ch, b, idx, in, oi, transports) - 1
			}
		}
	}

	fn.NormalizePhis()
	fn.RemoveUnreachable()
	// "If the F instruction is uselessly replicated, a dead-code-
	// elimination pass eliminates it after" (§7.3.1).
	passes.DCE(fn)
}

// keepInstr keeps an instruction in this chunk, wrapping it with its
// synchronization barrier when it is a relaxed-mode visible effect
// (§7.3.3), and appending the transport sends of its result. Returns the
// number of instructions now occupying the slot.
func (p *Program) keepInstr(ch *Chunk, b *ir.Block, idx int, in ir.Instr, oi ir.Instr) int {
	fn := ch.Fn
	var seq []ir.Instr
	if barTag, others, isEff := p.barrierOf(ch.Part, oi); isEff && ch.Color.IsUntrusted() {
		// Barrier entry: wait for one token per sibling chunk,
		// freezing the shared state everyone reads (§7.3.3: visible
		// effects execute "in the sequential order of the source
		// code"); acknowledge each sibling afterwards.
		for range others {
			seq = append(seq, ir.NewCallInstr(fn, p.intrWait, ir.I64Const(int64(barTag))))
		}
		seq = append(seq, in)
		for _, d := range others {
			seq = append(seq, ir.NewCallInstr(fn, p.intrSend,
				ir.I64Const(int64(p.ColorIndex(d))), ir.I64Const(int64(barTag)), ir.I64Const(0)))
		}
		seq = append(seq, p.transportSends(ch, in, oi)...)
		b.Splice(idx, seq...)
		return len(seq)
	}
	sends := p.transportSends(ch, in, oi)
	if len(sends) == 0 {
		return 1
	}
	seq = append(append(seq, in), sends...)
	b.Splice(idx, seq...)
	return len(seq)
}

// transportSends builds the cont sends shipping in's result to its
// consumer chunks.
func (p *Program) transportSends(ch *Chunk, in ir.Instr, oi ir.Instr) []ir.Instr {
	if oi == nil {
		return nil
	}
	tr := p.transportsOf(ch.Part)[oi]
	if tr == nil || len(tr.Consumers) == 0 {
		return nil
	}
	v, ok := in.(ir.Value)
	if !ok {
		return nil
	}
	fn := ch.Fn
	var seq []ir.Instr
	var payload ir.Value = v
	if !ir.TypesEqual(v.Type(), ir.I64) {
		cast := ir.NewCastInstr(fn, v, ir.I64)
		seq = append(seq, cast)
		payload = cast
	}
	for _, d := range tr.Consumers {
		if d == ch.Color {
			continue
		}
		seq = append(seq, ir.NewCallInstr(fn, p.intrSend,
			ir.I64Const(int64(p.ColorIndex(d))), ir.I64Const(int64(tr.Tag)), payload))
	}
	return seq
}

// dropOrReceive removes a foreign-colored instruction; if this chunk is a
// transport consumer of its result, a wait takes its place.
func (p *Program) dropOrReceive(ch *Chunk, b *ir.Block, idx int, in ir.Instr, oi ir.Instr, transports map[ir.Instr]*Transport) int {
	fn := ch.Fn
	var seq []ir.Instr
	// Barrier participation: send the token to the effect chunk, then
	// wait for its acknowledgment — the shared state is frozen while
	// the effect executes (§7.3.3).
	if barTag, _, isEff := p.barrierOf(ch.Part, oi); isEff && !ch.Color.IsUntrusted() {
		seq = append(seq,
			ir.NewCallInstr(fn, p.intrSend, ir.I64Const(0), ir.I64Const(int64(barTag)), ir.I64Const(0)),
			ir.NewCallInstr(fn, p.intrWait, ir.I64Const(int64(barTag))))
	}
	if oi != nil && transports[oi] != nil && contains(transports[oi].Consumers, ch.Color) {
		if v, ok := in.(ir.Value); ok {
			wait := ir.NewCallInstr(fn, p.intrWait, ir.I64Const(int64(transports[oi].Tag)))
			seq = append(seq, wait)
			var got ir.Value = wait
			if !ir.TypesEqual(v.Type(), ir.I64) {
				cast := ir.NewCastInstr(fn, wait, v.Type())
				seq = append(seq, cast)
				got = cast
			}
			fn.ReplaceUses(v, got)
			b.Splice(idx, seq...)
			return len(seq)
		}
	}
	if v, ok := in.(ir.Value); ok {
		if _, isVoid := v.Type().(ir.VoidType); !isVoid {
			fn.ReplaceUses(v, zeroConst(v.Type()))
		}
	}
	b.Splice(idx, seq...)
	return len(seq)
}

// barrierOf reports whether the original instruction is a relaxed-mode
// visible effect needing a §7.3.3 synchronization barrier, with its tag
// and the sibling chunks that participate.
func (p *Program) barrierOf(pf *PartFunc, oi ir.Instr) (tag int, others []ir.Color, ok bool) {
	if oi == nil || p.Mode != typing.Relaxed {
		return 0, nil, false
	}
	spec := pf.Spec
	if !spec.InstrColor[oi].IsUntrusted() {
		return 0, nil, false
	}
	switch t := oi.(type) {
	case *ir.Store:
		// Only stores into shared (S) memory are visible effects:
		// stores to explicit-U locations have a single reader and
		// writer (the U chunk), so they race with nobody.
		pt, isPtr := t.Ptr.Type().(ir.PointerType)
		if !isPtr || !pt.Color.IsNone() {
			return 0, nil, false
		}
	case *ir.Call:
		if p.Plans[t] != nil {
			return 0, nil, false // planned calls synchronize themselves
		}
	default:
		return 0, nil, false
	}
	for _, c := range pf.ColorSet {
		if !c.IsUntrusted() {
			others = append(others, c)
		}
	}
	if len(others) == 0 {
		return 0, nil, false
	}
	if pf.barriers == nil {
		pf.barriers = map[ir.Instr]int{}
	}
	tag, have := pf.barriers[oi]
	if !have {
		p.nextTag++
		tag = p.nextTag
		pf.barriers[oi] = tag
	}
	return tag, others, true
}

// Transport describes one cross-chunk value shipment: the consumer chunks
// and the static tag matching its sends with its waits.
type Transport struct {
	Consumers []ir.Color
	Tag       int
}

// transportsOf computes (once per function) which instruction results must
// travel between chunks: producer placed in a concrete color, result Free,
// consumed by instructions of other chunks. In hardened mode any such
// transport is an error (§7.3.2: a cont message cannot carry a Free value).
func (p *Program) transportsOf(pf *PartFunc) map[ir.Instr]*Transport {
	if pf.transports != nil {
		return pf.transports
	}
	spec := pf.Spec
	pf.transports = map[ir.Instr]*Transport{}
	inSet := map[ir.Color]bool{}
	for _, c := range pf.ColorSet {
		inSet[c] = true
	}
	spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		v, isVal := in.(ir.Value)
		if !isVal {
			return
		}
		if _, isVoid := v.Type().(ir.VoidType); isVoid {
			return
		}
		pc := spec.InstrColor[in]
		if pc.IsFree() || pc.IsNone() {
			return // replicated producers need no transport
		}
		if !spec.ValueColor(v).IsFree() {
			return // concretely colored results stay in their enclave
		}
		consumers := map[ir.Color]bool{}
		spec.Fn.Instrs(func(_ *ir.Block, user ir.Instr) {
			uses := false
			for _, op := range user.Ops() {
				if *op == v {
					uses = true
				}
			}
			if r, isRet := user.(*ir.Ret); isRet && r.Val == v {
				uses = true
			}
			if !uses {
				return
			}
			uc := spec.InstrColor[user]
			if uc.IsFree() || uc.IsNone() {
				// Replicated consumer: every chunk needs it.
				for _, d := range pf.ColorSet {
					if d != pc {
						consumers[d] = true
					}
				}
			} else if uc != pc && inSet[uc] {
				consumers[uc] = true
			}
		})
		if len(consumers) == 0 {
			return
		}
		p.nextTag++
		pf.transports[in] = &Transport{Consumers: sortColors(consumers), Tag: p.nextTag}
		if p.Mode == typing.Hardened {
			p.errorf(in.InstrPos(), "hardened mode: value %s is produced in %s but needed by chunks %v; "+
				"cont messages cannot carry Free values in hardened mode (paper §7.3.2)",
				v.Name(), pc, pf.transports[in].Consumers)
		}
	})
	return pf.transports
}

// dropInstr removes a foreign-colored instruction, replacing any remaining
// uses of its result with a zero constant (the typing rules guarantee such
// uses can only sit in instructions that are themselves dropped or in
// positions whose value is never consumed by this chunk).
func (p *Program) dropInstr(fn *ir.Function, b *ir.Block, idx *int, in ir.Instr) {
	if v, ok := in.(ir.Value); ok {
		if _, isVoid := v.Type().(ir.VoidType); !isVoid {
			fn.ReplaceUses(v, zeroConst(v.Type()))
		}
	}
	b.Splice(*idx)
	*idx--
}

func zeroConst(t ir.Type) ir.Value {
	switch tt := t.(type) {
	case ir.IntType:
		return ir.NewConstInt(tt, 0)
	case ir.FloatType:
		return &ir.ConstFloat{Typ: tt, V: 0}
	case ir.PointerType:
		return &ir.Null{Typ: tt}
	default:
		return ir.I64Const(0)
	}
}

func dummyRet(fn *ir.Function) ir.Instr {
	if _, isVoid := fn.RetTyp.(ir.VoidType); isVoid {
		return &ir.Ret{}
	}
	return &ir.Ret{Val: zeroConst(fn.RetTyp)}
}

// rewriteCall expands a planned call site inside chunk c into the §7.3.2
// protocol: spawns by the owner, a direct call for common colors, a join
// for completions, result distribution to waiters. It returns the number
// of instructions now occupying the call's slot.
func (p *Program) rewriteCall(ch *Chunk, b *ir.Block, idx int, call *ir.Call, plan *CallPlan, avail func(ir.Value) bool) int {
	fn := ch.Fn
	c := ch.Color
	target := plan.Target

	var seq []ir.Instr
	var result ir.Value

	// Owner spawns the missing chunks first, maximizing overlap
	// (Figure 7: f.blue sends s2/s3 before calling g.blue).
	if c == plan.Owner {
		for _, d := range plan.Spawns {
			dst := p.buildChunk(target, d)
			args := []ir.Value{ir.I64Const(int64(dst.ID)), ir.I64Const(boolToInt(plan.ResultFromJoin))}
			for _, fi := range plan.FArgIdx {
				if fi < len(call.Args) {
					args = append(args, call.Args[fi])
				}
			}
			seq = append(seq, ir.NewCallInstr(fn, p.intrSpawn, args...))
		}
	}

	switch {
	case plan.Direct[c] || target.Replicated:
		dst := p.buildChunk(target, c)
		args := make([]ir.Value, len(call.Args))
		for i, a := range call.Args {
			if avail(a) {
				args[i] = a
			} else {
				args[i] = zeroConst(a.Type())
			}
		}
		direct := ir.NewCallInstr(fn, dst.Fn, args...)
		seq = append(seq, direct)
		result = direct
	case c == plan.Owner && plan.ResultFromJoin:
		// The join returns the completion payload carrying the result.
	case contains(plan.Waiters, c):
		wait := ir.NewCallInstr(fn, p.intrWait, ir.I64Const(int64(plan.Tag)))
		seq = append(seq, wait)
		result = p.coerce(fn, &seq, wait, call.Type())
	}

	if c == plan.Owner {
		if len(plan.Spawns) > 0 {
			join := ir.NewCallInstr(fn, p.intrJoin, ir.I64Const(int64(len(plan.Spawns))))
			seq = append(seq, join)
			if plan.ResultFromJoin && result == nil {
				result = p.coerce(fn, &seq, join, call.Type())
			}
		}
		// Distribute the Free result to the waiting chunks
		// (Figure 7's c5 message carrying f's return value).
		if result != nil {
			if _, isVoid := result.Type().(ir.VoidType); !isVoid {
				for _, w := range plan.Waiters {
					widx := ir.I64Const(int64(p.ColorIndex(w)))
					payload := p.coerce(fn, &seq, result, ir.I64)
					seq = append(seq, ir.NewCallInstr(fn, p.intrSend,
						widx, ir.I64Const(int64(plan.Tag)), payload))
				}
			}
		}
	}

	if len(seq) == 0 {
		// This chunk neither calls nor waits: the call vanishes here.
		p.dropCallUses(fn, call)
		b.Splice(idx)
		return 0
	}
	if result != nil {
		fn.ReplaceUses(call, result)
	} else {
		p.dropCallUses(fn, call)
	}
	b.Splice(idx, seq...)
	return len(seq)
}

// coerce casts v to want when needed, appending the cast to seq.
func (p *Program) coerce(fn *ir.Function, seq *[]ir.Instr, v ir.Value, want ir.Type) ir.Value {
	if ir.TypesEqual(v.Type(), want) {
		return v
	}
	if _, isVoid := want.(ir.VoidType); isVoid {
		return v
	}
	cast := ir.NewCastInstr(fn, v, want)
	*seq = append(*seq, cast)
	return cast
}

// dropCallUses replaces remaining uses of a removed call's result with
// zero (legal: the typing rules ensure this chunk never consumes it).
func (p *Program) dropCallUses(fn *ir.Function, call *ir.Call) {
	if _, isVoid := call.Type().(ir.VoidType); isVoid {
		return
	}
	fn.ReplaceUses(call, zeroConst(call.Type()))
}

func contains(l []ir.Color, c ir.Color) bool {
	for _, x := range l {
		if x == c {
			return true
		}
	}
	return false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
