// Package partition implements the application-partitioning phase of the
// Privagic compiler (paper §7): after the secure type system has assigned a
// color to every instruction, this package rewrites the program into
// per-enclave function chunks (§7.3.1), plans direct chunk-to-chunk calls
// and spawn/cont/wait messaging for the missing chunks (§7.3.2), generates
// interface versions of the entry points (§7.3.4), gathers the shared
// globals (§7.1), and splits multi-color structures through an indirection
// level (§7.2).
//
// Cross-chunk operations are expressed as calls to reserved runtime
// intrinsics (IntrSpawn, IntrWait, IntrJoin, IntrSend) that the interpreter
// and the Privagic runtime execute over the lock-free inter-enclave queues.
package partition

import (
	"fmt"
	"sort"

	"privagic/internal/ir"
	"privagic/internal/typing"
)

// Runtime intrinsic names inserted by the partitioner.
const (
	// IntrSpawn starts a missing chunk on another enclave's worker:
	// __pv_spawn(chunkID, needReply, fArgs...).
	IntrSpawn = "__pv_spawn"
	// IntrWait blocks until a cont message arrives and returns its
	// payload: __pv_wait().
	IntrWait = "__pv_wait"
	// IntrJoin waits for n spawn-completion messages and returns the
	// payload of the completion flagged as carrying the result:
	// __pv_join(n).
	IntrJoin = "__pv_join"
	// IntrSendV is the vectored form of IntrSend emitted by the crossing
	// optimizer (internal/passes/crossing): one cont message carrying n
	// values that the reference plan shipped as n adjacent conts.
	// __pv_sendv(colorIdx, tag, v1, ..., vn).
	IntrSendV = "__pv_sendv"
	// IntrWaitV receives a vectored cont: it blocks like IntrWait,
	// stashes the payload vector under (worker, tag) and returns element
	// 0. The remaining elements are read with IntrElem.
	// __pv_waitv(tag) -> v1.
	IntrWaitV = "__pv_waitv"
	// IntrElem reads element i of the vector most recently received by
	// IntrWaitV for the same tag on this worker. __pv_elem(tag, i) -> vi.
	IntrElem = "__pv_elem"
	// IntrSend sends a cont message to a sibling chunk of the same
	// invocation: __pv_send(colorID, value).
	IntrSend = "__pv_send"
)

// Chunk is the colored version of a function (§7.3.1): it contains the
// instructions of its color plus the replicated Free instructions.
type Chunk struct {
	ID    int
	Color ir.Color
	Fn    *ir.Function
	Part  *PartFunc
}

// Name returns the linker-style chunk name, e.g. "get.blue".
func (c *Chunk) Name() string { return c.Part.Spec.Key + "." + c.Color.String() }

// PartFunc is a partitioned function specialization.
type PartFunc struct {
	Spec     *typing.FuncSpec
	ColorSet []ir.Color
	Chunks   map[ir.Color]*Chunk
	// Replicated marks functions with an empty color set: they are pure
	// with respect to enclaves and a chunk is generated per calling
	// color, like any other Free computation.
	Replicated bool
	// Interface is the entry-point wrapper executed in normal mode
	// (§7.3.4), nil for internal functions.
	Interface *InterfaceFn

	// transports caches the cross-chunk value transport analysis.
	transports map[ir.Instr]*Transport
	// barriers assigns tags to relaxed-mode visible effects (§7.3.3).
	barriers map[ir.Instr]int
}

// InterfaceFn describes the interface version of an entry point: it keeps
// the original name, spawns the missing chunks and runs the U chunk.
type InterfaceFn struct {
	Name   string
	Spawns []ir.Color
}

// CallPlan is the per-call-site protocol computed by the partitioner
// (§7.3.2): which callee chunks are reached by direct call, which are
// spawned by the owner chunk, and how the result travels.
type CallPlan struct {
	Target *PartFunc
	// Direct lists the colors common to caller and callee: chunk C of
	// the caller calls chunk C of the callee directly.
	Direct map[ir.Color]bool
	// Spawns lists callee colors absent from the caller, started with a
	// spawn message by the owner.
	Spawns []ir.Color
	// Owner is the caller chunk in charge of spawning and joining.
	Owner ir.Color
	// FArgIdx lists the indices of Free parameters forwarded to spawned
	// chunks (the trampoline payload of §7.3.2).
	FArgIdx []int
	// ResultColor is the typing color of the call result.
	ResultColor ir.Color
	// Waiters lists caller chunks that need the (Free) result but do
	// not call the callee themselves; the owner sends it to them.
	Waiters []ir.Color
	// ResultFromJoin is set when the owner itself obtains the result
	// from a spawn-completion message rather than a direct call.
	ResultFromJoin bool
	// Tag matches the owner's result sends with the waiters' waits.
	Tag int
}

// SplitStruct records a multi-color structure rewritten with an indirection
// level (§7.2): the struct body lives in unsafe memory and each colored
// field becomes a pointer to an object allocated in its enclave.
type SplitStruct struct {
	Struct *ir.StructType
	// FieldColors maps field index to the enclave owning the field's
	// out-of-line allocation.
	FieldColors map[int]ir.Color
}

// Program is a fully partitioned application.
type Program struct {
	Mod    *ir.Module
	An     *typing.Analysis
	Mode   typing.Mode
	Colors []ir.Color // named enclave colors

	Funcs     map[*typing.FuncSpec]*PartFunc
	Entries   map[string]*PartFunc // by original function name
	ChunkByID []*Chunk
	Plans     map[*ir.Call]*CallPlan
	Splits    map[string]*SplitStruct // by struct name

	// SharedGlobals are the unsafe-memory globals gathered into the
	// shared data structure of §7.1; EnclaveGlobals maps each enclave to
	// the globals placed inside it.
	SharedGlobals  []*ir.Global
	EnclaveGlobals map[ir.Color][]*ir.Global

	Errors []error

	nextTag   int
	intrSpawn *ir.Function
	intrWait  *ir.Function
	intrJoin  *ir.Function
	intrSend  *ir.Function
	intrSendV *ir.Function
	intrWaitV *ir.Function
	intrElem  *ir.Function
}

// Intrinsic returns the runtime intrinsic declaration with the given name
// (IntrSpawn etc.), or nil.
func (p *Program) Intrinsic(name string) *ir.Function {
	switch name {
	case IntrSpawn:
		return p.intrSpawn
	case IntrWait:
		return p.intrWait
	case IntrJoin:
		return p.intrJoin
	case IntrSend:
		return p.intrSend
	case IntrSendV:
		return p.intrSendV
	case IntrWaitV:
		return p.intrWaitV
	case IntrElem:
		return p.intrElem
	}
	return nil
}

// CompileSet returns every chunk body the closure compiler should lower:
// each runnable (non-empty) chunk function, deduplicated. Direct-call
// targets are themselves same-color chunk bodies, so lowering the chunk
// set covers every function the runtime can execute.
func (p *Program) CompileSet() []*ir.Function {
	seen := make(map[*ir.Function]bool, len(p.ChunkByID))
	out := make([]*ir.Function, 0, len(p.ChunkByID))
	for _, ch := range p.ChunkByID {
		if ch.Fn == nil || len(ch.Fn.Blocks) == 0 || seen[ch.Fn] {
			continue
		}
		seen[ch.Fn] = true
		out = append(out, ch.Fn)
	}
	return out
}

// AllocTag hands out a fresh cont-message tag. The crossing optimizer uses
// it when it replaces a run of adjacent transports with one vectored
// message; keeping the allocation here preserves the invariant that every
// tag in a chunk body is below MaxTag (the audit validator range-checks
// against it).
func (p *Program) AllocTag() int {
	p.nextTag++
	return p.nextTag
}

// Transports exposes the cross-chunk value transport plan of a partitioned
// function: for every producing instruction of the original spec body that
// other chunks consume, the consumer chunks and the cont-message tag that
// ships the value. Used by the interpreter-facing metadata consumers and by
// the static auditor (internal/audit) to re-verify every boundary crossing.
func (p *Program) Transports(pf *PartFunc) map[ir.Instr]*Transport {
	return p.transportsOf(pf)
}

// BarrierTags exposes the relaxed-mode visible-effect barrier tags of a
// partitioned function (§7.3.3), keyed by the original instruction. The map
// is populated while chunks are built; it is empty for hardened programs.
func (p *Program) BarrierTags(pf *PartFunc) map[ir.Instr]int {
	return pf.barriers
}

// ColorIndex returns a stable small integer for a color (used by the
// IntrSend intrinsic); U is always index 0.
func (p *Program) ColorIndex(c ir.Color) int {
	if c.IsUntrusted() {
		return 0
	}
	for i, x := range p.Colors {
		if x == c {
			return i + 1
		}
	}
	return -1
}

// ColorAt is the inverse of ColorIndex.
func (p *Program) ColorAt(i int) ir.Color {
	if i == 0 {
		return ir.U
	}
	return p.Colors[i-1]
}

// Partition rewrites an analyzed module. Analysis errors must have been
// handled by the caller; Partition adds its own errors (e.g. hardened-mode
// Free values crossing enclaves, §7.3.2).
func Partition(an *typing.Analysis) (*Program, error) {
	p := &Program{
		Mod:            an.Mod,
		An:             an,
		Mode:           an.Mode,
		Colors:         append([]ir.Color(nil), an.Colors...),
		Funcs:          map[*typing.FuncSpec]*PartFunc{},
		Entries:        map[string]*PartFunc{},
		Plans:          map[*ir.Call]*CallPlan{},
		Splits:         map[string]*SplitStruct{},
		EnclaveGlobals: map[ir.Color][]*ir.Global{},
	}
	p.placeGlobals()
	p.splitStructs()

	// Create PartFuncs for every live spec.
	for _, key := range sortedSpecKeys(an.Specs) {
		spec := an.Specs[key]
		pf := &PartFunc{
			Spec:     spec,
			ColorSet: spec.ColorSet(),
			Chunks:   map[ir.Color]*Chunk{},
		}
		pf.Replicated = len(pf.ColorSet) == 0
		p.Funcs[spec] = pf
	}
	p.declareIntrinsics()
	p.bubbleUpColorSets()
	// Compute call plans (they need all PartFuncs to exist).
	for _, pf := range p.sortedFuncs() {
		p.planCalls(pf)
	}
	// Build the chunks.
	for _, pf := range p.sortedFuncs() {
		for _, c := range pf.ColorSet {
			p.buildChunk(pf, c)
		}
	}
	// Interface versions for entry points and address-taken functions
	// (§7.3.4).
	for _, spec := range an.Entries {
		p.buildInterface(spec)
	}
	for _, spec := range an.Indirect {
		p.buildInterface(spec)
	}
	if len(p.Errors) > 0 {
		return p, joinErrors(p.Errors)
	}
	return p, nil
}

func (p *Program) errorf(pos ir.Pos, format string, args ...any) {
	p.Errors = append(p.Errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (p *Program) sortedFuncs() []*PartFunc {
	out := make([]*PartFunc, 0, len(p.Funcs))
	for _, pf := range p.Funcs {
		out = append(out, pf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key < out[j].Spec.Key })
	return out
}

func sortedSpecKeys(m map[string]*typing.FuncSpec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	return fmt.Errorf("partition: %d errors, first: %w", len(errs), errs[0])
}

// placeGlobals assigns every global to its memory region: colored globals
// go inside their enclave; the rest are gathered into the shared unsafe
// block (§7.1).
func (p *Program) placeGlobals() {
	for _, g := range p.Mod.Globals {
		if g.Color.IsEnclave() {
			p.EnclaveGlobals[g.Color] = append(p.EnclaveGlobals[g.Color], g)
		} else {
			p.SharedGlobals = append(p.SharedGlobals, g)
		}
	}
}

// splitStructs records the indirection rewriting of multi-color structures
// (§7.2). The memory layout change (colored fields become pointers to
// out-of-line allocations in their enclaves) is honored by the runtime's
// allocator and address computation; the typing phase has already verified
// that this only happens in relaxed mode (§8).
func (p *Program) splitStructs() {
	for _, st := range p.Mod.Structs {
		colors := st.Colors()
		if len(colors) < 2 {
			continue
		}
		split := &SplitStruct{Struct: st, FieldColors: map[int]ir.Color{}}
		for i, f := range st.Fields {
			if f.Color.IsEnclave() {
				split.FieldColors[i] = f.Color
			}
		}
		p.Splits[st.Name] = split
	}
}

// buildInterface generates the interface version of an entry point: it
// keeps the original name, is executed in normal mode, spawns the enclave
// chunks, and then runs the U chunk directly (§7.3.4, Figure 7's
// "main (interf.)").
func (p *Program) buildInterface(spec *typing.FuncSpec) {
	pf := p.Funcs[spec]
	if pf == nil || pf.Interface != nil {
		return
	}
	var spawns []ir.Color
	for _, c := range pf.ColorSet {
		if !c.IsUntrusted() {
			spawns = append(spawns, c)
		}
	}
	pf.Interface = &InterfaceFn{Name: spec.Orig.FName, Spawns: spawns}
	p.Entries[spec.Orig.FName] = pf
	// An interface always needs a U chunk to run in normal mode, even
	// if the function never touches unsafe memory.
	if _, ok := pf.Chunks[ir.U]; !ok {
		p.buildChunk(pf, ir.U)
	}
}
