package partition

import (
	"strings"
	"testing"

	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/typing"
)

const figure6Src = `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`

func partitionSrc(t *testing.T, mode typing.Mode, src string, entries ...string) *Program {
	t.Helper()
	mod, err := minic.Compile("test.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: mode, Entries: entries})
	if err := an.Err(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	prog, err := Partition(an)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return prog
}

func chunkOf(t *testing.T, p *Program, fnKeyPrefix string, c ir.Color) *Chunk {
	t.Helper()
	for _, pf := range p.Funcs {
		if strings.HasPrefix(pf.Spec.Key, fnKeyPrefix) {
			if ch := pf.Chunks[c]; ch != nil {
				return ch
			}
		}
	}
	t.Fatalf("no chunk %s for %s", c, fnKeyPrefix)
	return nil
}

func countCallsTo(fn *ir.Function, name string) int {
	n := 0
	fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		call, ok := in.(*ir.Call)
		if !ok {
			return
		}
		if f, ok := call.Callee.(*ir.Function); ok && f.FName == name {
			n++
		}
	})
	return n
}

// TestFigure6Chunks reproduces Figure 7's partitioning of the Figure 6
// program: g gets three chunks (red, blue, U), f one chunk (blue) that
// spawns g.red and g.U and directly calls g.blue, and main gets blue and U
// chunks with an interface.
func TestFigure6Chunks(t *testing.T) {
	p := partitionSrc(t, typing.Relaxed, figure6Src, "main")

	// g: three chunks.
	for _, c := range []ir.Color{ir.Named("red"), ir.Named("blue"), ir.U} {
		ch := chunkOf(t, p, "g(", c)
		if ch.Fn == nil || len(ch.Fn.Blocks) == 0 {
			t.Errorf("g chunk %s has no body", c)
		}
	}
	// g.blue stores to @blue but not @red, and vice versa.
	gBlue := chunkOf(t, p, "g(", ir.Named("blue"))
	gRed := chunkOf(t, p, "g(", ir.Named("red"))
	gU := chunkOf(t, p, "g(", ir.U)
	if n := countStoresTo(gBlue.Fn, "blue"); n != 1 {
		t.Errorf("g.blue stores to @blue %d times, want 1\n%s", n, gBlue.Fn.String2())
	}
	if n := countStoresTo(gBlue.Fn, "red"); n != 0 {
		t.Errorf("g.blue stores to @red %d times, want 0", n)
	}
	if n := countStoresTo(gRed.Fn, "red"); n != 1 {
		t.Errorf("g.red stores to @red %d times, want 1", n)
	}
	// printf only in g.U.
	if n := countCallsTo(gU.Fn, "printf"); n != 1 {
		t.Errorf("g.U calls printf %d times, want 1\n%s", n, gU.Fn.String2())
	}
	if n := countCallsTo(gBlue.Fn, "printf"); n != 0 {
		t.Errorf("g.blue calls printf %d times, want 0", n)
	}

	// f.blue: direct call to g.blue, two spawns (g.red, g.U), a join.
	fBlue := chunkOf(t, p, "f(", ir.Named("blue"))
	if n := countCallsTo(fBlue.Fn, gBlue.Fn.FName); n != 1 {
		t.Errorf("f.blue directly calls g.blue %d times, want 1\n%s", n, fBlue.Fn.String2())
	}
	if n := countCallsTo(fBlue.Fn, IntrSpawn); n != 2 {
		t.Errorf("f.blue spawns %d chunks, want 2 (g.red, g.U)\n%s", n, fBlue.Fn.String2())
	}
	if n := countCallsTo(fBlue.Fn, IntrJoin); n != 1 {
		t.Errorf("f.blue joins %d times, want 1", n)
	}

	// main: interface with a blue spawn; main.U stores to @unsafe and
	// waits for f's Free result (Figure 7's c5).
	mainPf := p.Entries["main"]
	if mainPf == nil {
		t.Fatal("main has no interface version")
	}
	if len(mainPf.Interface.Spawns) != 1 || mainPf.Interface.Spawns[0] != ir.Named("blue") {
		t.Errorf("main interface spawns %v, want [blue]", mainPf.Interface.Spawns)
	}
	mainU := mainPf.Chunks[ir.U]
	if mainU == nil {
		t.Fatal("main has no U chunk")
	}
	if n := countStoresTo(mainU.Fn, "unsafe"); n != 1 {
		t.Errorf("main.U stores to @unsafe %d times, want 1", n)
	}
	if n := countCallsTo(mainU.Fn, IntrWait); n != 1 {
		t.Errorf("main.U waits %d times, want 1 (receiving f's result)\n%s", n, mainU.Fn.String2())
	}
	// main.blue sends the result to main.U.
	mainBlue := mainPf.Chunks[ir.Named("blue")]
	if n := countCallsTo(mainBlue.Fn, IntrSend); n != 1 {
		t.Errorf("main.blue sends %d results, want 1\n%s", n, mainBlue.Fn.String2())
	}
}

func countStoresTo(fn *ir.Function, global string) int {
	n := 0
	fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		st, ok := in.(*ir.Store)
		if !ok {
			return
		}
		if g, ok := st.Ptr.(*ir.Global); ok && g.GName == global {
			n++
		}
	})
	return n
}

// TestHardenedRejectsFreeCrossings checks §7.3.2: in hardened mode a
// spawned chunk cannot receive Free arguments computed by the caller.
func TestHardenedRejectsFreeCrossings(t *testing.T) {
	// The caller's color set {red} does not contain blue, so g.blue is
	// spawned and needs the Free argument 42 computed by the caller —
	// exactly the case §7.3.2 rejects in hardened mode.
	src2 := `
int color(blue) b;
int color(red) r;
void g(int n) { b = n; }
entry void main() {
	r = 7;
	g(41 + 1);
}
`
	mod2, err := minic.Compile("test.c", src2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	passes.RunAll(mod2)
	an := typing.Analyze(mod2, typing.Options{Mode: typing.Hardened, Entries: []string{"main"}})
	if err := an.Err(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	_, err = Partition(an)
	if err == nil {
		t.Fatal("expected a hardened-mode partition error for Free argument crossing")
	}
	if !strings.Contains(err.Error(), "hardened mode") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestRelaxedAllowsFreeCrossings: the same program partitions fine in
// relaxed mode (the cont message carries the Free value, Figure 7).
func TestRelaxedAllowsFreeCrossings(t *testing.T) {
	src := `
int color(blue) b;
void g(int n) { b = n; }
entry void main() {
	g(41 + 1);
}
`
	p := partitionSrc(t, typing.Relaxed, src, "main")
	gBlue := chunkOf(t, p, "g(", ir.Named("blue"))
	if n := countStoresTo(gBlue.Fn, "b"); n != 1 {
		t.Errorf("g.blue stores to @b %d times, want 1", n)
	}
}

// TestSingleColorDirectCalls: with a single color and matching color sets
// there are no spawns at all — everything is direct chunk-to-chunk calls.
func TestSingleColorDirectCalls(t *testing.T) {
	src := `
long color(blue) total;
void add(long color(blue) v) { total = total + v; }
entry void bump() {
	add(total);
}
`
	p := partitionSrc(t, typing.Relaxed, src, "bump")
	bumpBlue := chunkOf(t, p, "bump(", ir.Named("blue"))
	if n := countCallsTo(bumpBlue.Fn, IntrSpawn); n != 0 {
		t.Errorf("bump.blue spawns %d, want 0 (common color => direct call)\n%s", n, bumpBlue.Fn.String2())
	}
	addKey := typing.SpecKey("add", []ir.Color{ir.Named("blue")})
	if n := countCallsTo(bumpBlue.Fn, addKey+".blue"); n != 1 {
		t.Errorf("bump.blue direct-calls add.blue %d times, want 1\n%s", n, bumpBlue.Fn.String2())
	}
}

// TestForeignRegionBypassed: a chunk whose color differs from a branch
// condition jumps straight to the join (Rule 4 regions contain only the
// condition's color).
func TestForeignRegionBypassed(t *testing.T) {
	src := `
int color(blue) b;
int color(blue) x;
int color(red) r;
entry void f() {
	r = 1;
	if (b == 42)
		x = 1;
	r = 2;
}
`
	p := partitionSrc(t, typing.Relaxed, src, "f")
	fRed := chunkOf(t, p, "f(", ir.Named("red"))
	// The red chunk must not contain the blue comparison or the blue
	// store, but must keep both red stores.
	if n := countStoresTo(fRed.Fn, "x"); n != 0 {
		t.Errorf("f.red contains the blue store\n%s", fRed.Fn.String2())
	}
	if n := countStoresTo(fRed.Fn, "r"); n != 2 {
		t.Errorf("f.red has %d stores to @r, want 2\n%s", n, fRed.Fn.String2())
	}
	fBlue := chunkOf(t, p, "f(", ir.Named("blue"))
	if n := countStoresTo(fBlue.Fn, "x"); n != 1 {
		t.Errorf("f.blue has %d stores to @x, want 1\n%s", n, fBlue.Fn.String2())
	}
}

// TestSharedGlobalsGathered checks §7.1: uncolored globals are gathered in
// the shared block; colored globals go to their enclave.
func TestSharedGlobalsGathered(t *testing.T) {
	src := `
int plain;
int color(blue) secret;
entry void f() { plain = 1; }
`
	p := partitionSrc(t, typing.Relaxed, src, "f")
	foundShared, foundBlue := false, false
	for _, g := range p.SharedGlobals {
		if g.GName == "plain" {
			foundShared = true
		}
	}
	for _, g := range p.EnclaveGlobals[ir.Named("blue")] {
		if g.GName == "secret" {
			foundBlue = true
		}
	}
	if !foundShared || !foundBlue {
		t.Errorf("global placement wrong: shared=%v blue=%v", foundShared, foundBlue)
	}
}

// TestSplitStructs checks §7.2: multi-color structs are recorded for the
// indirection rewrite.
func TestSplitStructs(t *testing.T) {
	src := `
struct account {
	char color(blue) name[16];
	double color(red) balance;
};
struct account* create() {
	struct account* a = malloc(sizeof(struct account));
	a->balance = 1.0;
	return a;
}
`
	p := partitionSrc(t, typing.Relaxed, src, "create")
	sp := p.Splits["account"]
	if sp == nil {
		t.Fatal("account not recorded as a split struct")
	}
	if sp.FieldColors[0] != ir.Named("blue") || sp.FieldColors[1] != ir.Named("red") {
		t.Errorf("field colors = %v", sp.FieldColors)
	}
}

// TestTCBReport checks the Table 4 metric: each enclave holds a fraction of
// the program, and the reduction factor versus full embedding is large.
func TestTCBReport(t *testing.T) {
	p := partitionSrc(t, typing.Relaxed, figure6Src, "main")
	r := p.Report()
	if r.TotalUserInstrs == 0 {
		t.Fatal("no user instructions counted")
	}
	blue := r.UserInstrsPerEnclave[ir.Named("blue")]
	if blue == 0 {
		t.Error("blue enclave holds no instructions")
	}
	if f := r.ReductionFactor(); f < 10 {
		t.Errorf("TCB reduction factor = %.1f, want a large factor", f)
	}
}

// TestChunksVerify runs the IR verifier over every generated chunk.
func TestChunksVerify(t *testing.T) {
	p := partitionSrc(t, typing.Relaxed, figure6Src, "main")
	for _, pf := range p.Funcs {
		for c, ch := range pf.Chunks {
			if len(ch.Fn.Blocks) == 0 {
				continue
			}
			if err := ir.VerifyFunc(ch.Fn); err != nil {
				t.Errorf("chunk %s.%s: %v\n%s", pf.Spec.Key, c, err, ch.Fn.String2())
			}
		}
	}
}
