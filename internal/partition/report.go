package partition

import (
	"fmt"
	"sort"
	"strings"

	"privagic/internal/ir"
)

// TCBReport summarizes the trusted computing base of a partitioned program,
// the metric of paper Table 4 and §9.2.2: how much code ends up inside each
// enclave versus embedding the whole application.
type TCBReport struct {
	// UserInstrsPerEnclave counts the user-code IR instructions loaded
	// in each enclave (the "User code (LLVM)" column of Table 4).
	UserInstrsPerEnclave map[ir.Color]int
	// TotalUserInstrs is the whole application's instruction count (what
	// a Scone-style full embedding loads).
	TotalUserInstrs int
	// RuntimeKiB is the fixed runtime footprint added per enclave (Intel
	// SDK runtime + Privagic runtime, 268 KiB in the paper).
	RuntimeKiB int
	// FullEmbedKiB is the footprint of embedding the application with a
	// libOS (51271 KiB in the paper, dominated by musl + libOS).
	FullEmbedKiB int
}

// Paper-calibrated fixed footprints (§9.2.2).
const (
	privagicRuntimeKiB = 268
	sconeLibOSKiB      = 36200 + 14700 // libOS + musl
	bytesPerInstr      = 12            // rough x86 encoding of one IR instruction
)

// Report computes the TCB metrics of the partitioned program.
func (p *Program) Report() *TCBReport {
	r := &TCBReport{
		UserInstrsPerEnclave: map[ir.Color]int{},
		RuntimeKiB:           privagicRuntimeKiB,
	}
	for _, fn := range p.Mod.Funcs {
		if fn.External {
			continue
		}
		r.TotalUserInstrs += countInstrs(fn)
	}
	for _, pf := range p.Funcs {
		for c, ch := range pf.Chunks {
			if c.IsUntrusted() {
				continue // normal-mode code is not in any TCB
			}
			r.UserInstrsPerEnclave[c] += countInstrs(ch.Fn)
		}
	}
	r.FullEmbedKiB = sconeLibOSKiB + r.TotalUserInstrs*bytesPerInstr/1024
	return r
}

func countInstrs(fn *ir.Function) int {
	n := 0
	fn.Instrs(func(_ *ir.Block, _ ir.Instr) { n++ })
	return n
}

// EnclaveKiB estimates the binary footprint of one enclave: its share of
// user code plus the fixed runtime.
func (r *TCBReport) EnclaveKiB(c ir.Color) int {
	return r.RuntimeKiB + r.UserInstrsPerEnclave[c]*bytesPerInstr/1024
}

// ReductionFactor returns how many times smaller the largest enclave is
// than the full embedding (the paper reports >200x for memcached).
func (r *TCBReport) ReductionFactor() float64 {
	largest := 0
	for c := range r.UserInstrsPerEnclave {
		if k := r.EnclaveKiB(c); k > largest {
			largest = k
		}
	}
	if largest == 0 {
		largest = r.RuntimeKiB
	}
	return float64(r.FullEmbedKiB) / float64(largest)
}

// String renders the report as a Table 4-style block.
func (r *TCBReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %18s\n", "", "TCB (KiB)", "User code (IR ins)")
	fmt.Fprintf(&b, "%-22s %12d %18d\n", "full-embed (scone)", r.FullEmbedKiB, r.TotalUserInstrs)
	var colors []ir.Color
	for c := range r.UserInstrsPerEnclave {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i].String() < colors[j].String() })
	for _, c := range colors {
		fmt.Fprintf(&b, "%-22s %12d %18d\n",
			"privagic enclave "+c.String(), r.EnclaveKiB(c), r.UserInstrsPerEnclave[c])
	}
	fmt.Fprintf(&b, "TCB reduction: %.0fx\n", r.ReductionFactor())
	return b.String()
}
