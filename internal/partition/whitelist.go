package partition

import (
	"sort"
)

// SpawnWhitelist computes, per enclave color index, the set of chunk IDs
// that legitimate generated code ever spawns there. Paper §8 leaves
// "identifying the valid sequences of spawn messages" as future work
// against an attacker who injects spawn messages into the unsafe-memory
// queues; this is the static half of that defense: a worker configured
// with the whitelist refuses to start any chunk the compiler never
// scheduled for it. (Sequencing — *when* a listed chunk may start — would
// additionally need per-callsite session types; see the runtime's
// ValidateSpawn hook.)
func (p *Program) SpawnWhitelist() map[int][]int {
	set := map[int]map[int]bool{}
	add := func(colorIdx, chunkID int) {
		if set[colorIdx] == nil {
			set[colorIdx] = map[int]bool{}
		}
		set[colorIdx][chunkID] = true
	}
	// Chunks spawned by call plans (§7.3.2).
	for _, plan := range p.Plans {
		for _, d := range plan.Spawns {
			if ch := plan.Target.Chunks[d]; ch != nil {
				add(p.ColorIndex(d), ch.ID)
			}
		}
	}
	// Chunks spawned by interface versions (§7.3.4).
	for _, pf := range p.Entries {
		if pf.Interface == nil {
			continue
		}
		for _, c := range pf.Interface.Spawns {
			if ch := pf.Chunks[c]; ch != nil {
				add(p.ColorIndex(c), ch.ID)
			}
		}
	}
	out := map[int][]int{}
	for colorIdx, ids := range set {
		for id := range ids {
			out[colorIdx] = append(out[colorIdx], id)
		}
		sort.Ints(out[colorIdx])
	}
	return out
}

// MaxTag is the highest cont tag the partitioner allocated. It bounds the
// dynamic half of the §8 defense: a cont message whose tag exceeds it was
// never produced by generated code and can be rejected outright (see the
// runtime's ValidateCont hook).
func (p *Program) MaxTag() int { return p.nextTag }
