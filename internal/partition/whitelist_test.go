package partition

import (
	"testing"

	"privagic/internal/ir"
	"privagic/internal/typing"
)

// TestSpawnWhitelist checks the §8 whitelist on the Figure 6 program: the
// red worker may only ever start g.red; the blue worker starts main.blue,
// f.blue is never spawned (always reached by direct call), and g.U goes to
// worker 0.
func TestSpawnWhitelist(t *testing.T) {
	p := partitionSrc(t, typing.Relaxed, figure6Src, "main")
	wl := p.SpawnWhitelist()

	idOf := func(fnPrefix string, c ir.Color) int {
		ch := chunkOf(t, p, fnPrefix, c)
		return ch.ID
	}
	redIdx := p.ColorIndex(ir.Named("red"))
	blueIdx := p.ColorIndex(ir.Named("blue"))

	if !containsInt(wl[redIdx], idOf("g(", ir.Named("red"))) {
		t.Errorf("red whitelist %v missing g.red", wl[redIdx])
	}
	if len(wl[redIdx]) != 1 {
		t.Errorf("red whitelist = %v, want exactly g.red", wl[redIdx])
	}
	if !containsInt(wl[blueIdx], idOf("main(", ir.Named("blue"))) {
		t.Errorf("blue whitelist %v missing main.blue (interface spawn)", wl[blueIdx])
	}
	if containsInt(wl[blueIdx], idOf("f(", ir.Named("blue"))) {
		t.Errorf("f.blue is direct-called, never spawned; whitelist %v", wl[blueIdx])
	}
	if !containsInt(wl[0], idOf("g(", ir.U)) {
		t.Errorf("U whitelist %v missing g.U", wl[0])
	}
}

func containsInt(l []int, x int) bool {
	for _, v := range l {
		if v == x {
			return true
		}
	}
	return false
}

// TestChunksAreDCEd checks the §7.3.1 cleanup: a chunk must not retain
// dead replicated computations feeding only foreign-colored instructions.
func TestChunksAreDCEd(t *testing.T) {
	src := `
long color(blue) b;
long color(red) r;
entry void f() {
	long x = 10 * 10;
	long y = 20 * 20;
	b = x;
	r = y;
}
`
	p := partitionSrc(t, typing.Relaxed, src, "f")
	blue := chunkOf(t, p, "f(", ir.Named("blue"))
	// The y computation feeds only the red store: DCE must have removed
	// it from the blue chunk. Count multiplications.
	muls := 0
	blue.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if op, ok := in.(*ir.BinOp); ok && op.Op == ir.OpMul {
			muls++
		}
	})
	if muls > 1 {
		t.Errorf("blue chunk keeps %d multiplications, want <= 1 after DCE\n%s", muls, blue.Fn.String2())
	}
}
