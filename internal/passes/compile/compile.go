// Package compile lowers partitioned chunk bodies to closure-compiled
// Go: every SSA instruction becomes one fused exec.Step in a flat
// per-function array, with operands pre-resolved to dense register slots
// (or baked-in immediates), block jump targets pre-resolved to step
// indices, and φ-nodes turned into parallel edge copies executed by the
// incoming branch step.
//
// The security and robustness seams are not re-implemented: memory,
// allocation, field indirection, and call dispatch compile into calls on
// exec.Env — the same interface the interpreter's own loop uses — so the
// sanitizer, boundary snapshot, effect transaction, replay journal, and
// observability hooks fire identically in both tiers (DESIGN.md §18).
//
// A Unit is compiled per interpreter instance: global addresses and
// function-pointer values are resolved through the Env at compile time
// and baked into the closures as immediates.
package compile

import (
	"fmt"
	"time"

	"privagic/internal/exec"
	"privagic/internal/ir"
)

// Options tunes a compilation unit.
type Options struct {
	// SkipLoadSeam compiles every load into a raw backing-memory read
	// through exec.SeamlessLoader, bypassing the boundary-snapshot /
	// effect-transaction / journal seams. It exists solely so the
	// negative differential-oracle test can prove a seam-skipping
	// compile is caught rather than silently faster-and-wrong; it must
	// never be set in production.
	SkipLoadSeam bool
}

// Unit is the compiled form of a program's chunk bodies.
type Unit struct {
	fns map[*ir.Function]*Fn

	// CompileTime is the wall time spent lowering the unit.
	CompileTime time.Duration
	// Steps is the total number of compiled steps across all functions.
	Steps int
}

// New compiles every function in fns (functions without bodies are
// skipped; duplicates are compiled once). The env is consulted at
// compile time for global addresses, function-pointer values, and
// element strides, so the unit is bound to the interpreter instance that
// provided it.
func New(fns []*ir.Function, env exec.Env, opts Options) *Unit {
	start := time.Now()
	u := &Unit{fns: make(map[*ir.Function]*Fn, len(fns))}
	for _, fn := range fns {
		if fn == nil || len(fn.Blocks) == 0 {
			continue
		}
		if _, dup := u.fns[fn]; dup {
			continue
		}
		cf := compileFn(fn, env, opts)
		u.fns[fn] = cf
		u.Steps += len(cf.Code)
	}
	u.CompileTime = time.Since(start)
	return u
}

// Fn returns the compiled form of fn, or nil if fn was not in the unit
// (callers fall back to the interpreter).
func (u *Unit) Fn(fn *ir.Function) *Fn { return u.fns[fn] }

// Len returns the number of compiled functions.
func (u *Unit) Len() int { return len(u.fns) }

// Fn is one compiled function body.
type Fn struct {
	// IR is the source function.
	IR *ir.Function
	// Code is the flat step array; execution starts at index 0.
	Code []exec.Step
	// NumSlots is the register-file size an activation frame needs.
	NumSlots int
	// NumParams is how many leading slots receive arguments.
	NumParams int

	slots   map[ir.Value]int
	blockPC map[*ir.Block]int
}

// SlotOf reports the register slot assigned to a value (a parameter or
// an instruction result), for tests and debugging.
func (f *Fn) SlotOf(v ir.Value) (int, bool) {
	s, ok := f.slots[v]
	return s, ok
}

// BlockPC reports the step index a jump to block b lands on (its first
// non-φ instruction), for tests and debugging.
func (f *Fn) BlockPC(b *ir.Block) (int, bool) {
	c, ok := f.blockPC[b]
	return c, ok
}

// operand is a pre-resolved instruction input: a register slot, or an
// immediate baked at compile time (constants, globals, function values).
type operand struct {
	slot int // -1 for immediates
	imm  exec.Val
}

func (o operand) get(fr *exec.Frame) exec.Val {
	if o.slot >= 0 {
		return fr.Regs[o.slot]
	}
	return o.imm
}

// edgeCopy is one φ assignment performed by an incoming branch.
type edgeCopy struct {
	dst int
	src operand
}

// applyCopies performs a branch edge's φ copies with parallel-assignment
// semantics: all sources are read before any destination is written.
func applyCopies(fr *exec.Frame, copies []edgeCopy) {
	switch len(copies) {
	case 0:
	case 1:
		fr.Regs[copies[0].dst] = copies[0].src.get(fr)
	default:
		var buf [8]exec.Val
		vals := buf[:0]
		for i := range copies {
			vals = append(vals, copies[i].src.get(fr))
		}
		for i := range copies {
			fr.Regs[copies[i].dst] = vals[i]
		}
	}
}

type fnCompiler struct {
	fn      *ir.Function
	env     exec.Env
	opts    Options
	slots   map[ir.Value]int
	nslots  int
	blockPC map[*ir.Block]int
	code    []exec.Step
}

func compileFn(fn *ir.Function, env exec.Env, opts Options) *Fn {
	c := &fnCompiler{
		fn:      fn,
		env:     env,
		opts:    opts,
		slots:   make(map[ir.Value]int, 16),
		blockPC: make(map[*ir.Block]int, len(fn.Blocks)),
	}
	// Slot assignment: parameters first (the frame builder copies
	// arguments into the leading slots), then every value-producing
	// instruction in block order.
	for _, p := range fn.Params {
		c.slot(p)
	}
	nparams := c.nslots
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if v, ok := in.(ir.Value); ok {
				c.slot(v)
			}
		}
	}
	// Layout: a jump to a block lands on its first non-φ step (φs
	// compile into the incoming edges, not into steps). A block missing
	// its terminator gets a synthesized fall-through-error step so the
	// count stays exact.
	pc := 0
	for _, b := range fn.Blocks {
		c.blockPC[b] = pc
		pc += len(b.Instrs) - countPhis(b)
		if b.Terminator() == nil {
			pc++
		}
	}
	c.code = make([]exec.Step, 0, pc)
	for _, b := range fn.Blocks {
		c.emitBlock(b)
	}
	return &Fn{
		IR:        fn,
		Code:      c.code,
		NumSlots:  c.nslots,
		NumParams: nparams,
		slots:     c.slots,
		blockPC:   c.blockPC,
	}
}

func countPhis(b *ir.Block) int {
	n := 0
	for _, in := range b.Instrs {
		if _, ok := in.(*ir.Phi); !ok {
			break
		}
		n++
	}
	return n
}

func (c *fnCompiler) slot(v ir.Value) int {
	if s, ok := c.slots[v]; ok {
		return s
	}
	s := c.nslots
	c.slots[v] = s
	c.nslots++
	return s
}

// operand resolves an instruction input. Constants, globals, and
// function values become immediates (globals and functions through the
// env, binding the unit to its interpreter instance); everything else
// reads its producer's slot. Unknown values resolve to a zero immediate,
// matching the interpreter's eval fallback.
func (c *fnCompiler) operand(v ir.Value) operand {
	switch t := v.(type) {
	case *ir.ConstInt:
		return operand{slot: -1, imm: exec.IV(t.V)}
	case *ir.ConstFloat:
		return operand{slot: -1, imm: exec.FV(t.V)}
	case *ir.Null:
		return operand{slot: -1, imm: exec.IV(0)}
	case *ir.Global:
		return operand{slot: -1, imm: c.env.GlobalAddr(t)}
	case *ir.Function:
		return operand{slot: -1, imm: c.env.FuncValue(t)}
	}
	if s, ok := c.slots[v]; ok {
		return operand{slot: s}
	}
	return operand{slot: -1}
}

// edgePlan collects the φ copies a jump from `from` into `to` performs.
// A φ without an edge for the predecessor receives the zero value,
// matching the interpreter.
func (c *fnCompiler) edgePlan(from, to *ir.Block) []edgeCopy {
	var out []edgeCopy
	for _, in := range to.Instrs {
		phi, ok := in.(*ir.Phi)
		if !ok {
			break
		}
		src := operand{slot: -1}
		for _, e := range phi.Edges {
			if e.Pred == from {
				src = c.operand(e.Val)
				break
			}
		}
		out = append(out, edgeCopy{dst: c.slots[phi], src: src})
	}
	return out
}

func (c *fnCompiler) emitBlock(b *ir.Block) {
	nphi := countPhis(b)
	for _, in := range b.Instrs[nphi:] {
		c.emitInstr(b, in)
	}
	if b.Terminator() == nil {
		msg := fmt.Sprintf("interp: block %%%s of @%s falls through", b.BName, c.fn.FName)
		c.code = append(c.code, func(fr *exec.Frame) int {
			exec.Errs(msg)
			return -1
		})
	}
}

// budget enforces the shared step budget; branch steps call it so a
// livelocked compiled chunk fails with the interpreter's error.
func (c *fnCompiler) budgetMsg() string {
	return fmt.Sprintf("interp: instruction budget exceeded in @%s (livelock?)", c.fn.FName)
}

func (c *fnCompiler) emitInstr(b *ir.Block, in ir.Instr) {
	next := len(c.code) + 1
	switch t := in.(type) {
	case *ir.Ret:
		if t.Val == nil {
			c.code = append(c.code, func(fr *exec.Frame) int {
				fr.Ret = exec.Val{}
				return -1
			})
			return
		}
		vo := c.operand(t.Val)
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Ret = vo.get(fr)
			return -1
		})

	case *ir.Br:
		target := c.blockPC[t.Target]
		copies := c.edgePlan(b, t.Target)
		over := c.budgetMsg()
		c.code = append(c.code, func(fr *exec.Frame) int {
			if fr.Steps++; fr.Steps > exec.StepBudget {
				exec.Errs(over)
			}
			applyCopies(fr, copies)
			return target
		})

	case *ir.CondBr:
		co := c.operand(t.Cond)
		thenPC, elsePC := c.blockPC[t.Then], c.blockPC[t.Else]
		thenCopies := c.edgePlan(b, t.Then)
		elseCopies := c.edgePlan(b, t.Else)
		over := c.budgetMsg()
		c.code = append(c.code, func(fr *exec.Frame) int {
			if fr.Steps++; fr.Steps > exec.StepBudget {
				exec.Errs(over)
			}
			if co.get(fr).I != 0 {
				applyCopies(fr, thenCopies)
				return thenPC
			}
			applyCopies(fr, elseCopies)
			return elsePC
		})

	case *ir.Alloca:
		dst := c.slots[t]
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = fr.Env.Alloca(fr.W, t)
			return next
		})

	case *ir.Malloc:
		dst := c.slots[t]
		co := operand{slot: -1, imm: exec.IV(1)}
		if t.Count != nil {
			co = c.operand(t.Count)
		}
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = fr.Env.Malloc(fr.W, t, co.get(fr))
			return next
		})

	case *ir.Free:
		// The bump allocator does not reclaim; free is a no-op step.
		c.code = append(c.code, func(fr *exec.Frame) int { return next })

	case *ir.Load:
		dst := c.slots[t]
		po := c.operand(t.Ptr)
		nilMsg := fmt.Sprintf("interp: nil dereference: %q in @%s", t.String(), c.fn.FName)
		if c.opts.SkipLoadSeam {
			c.code = append(c.code, func(fr *exec.Frame) int {
				addr := uint64(po.get(fr).I)
				if addr == 0 {
					exec.Errs(nilMsg)
				}
				if sl, ok := fr.Env.(exec.SeamlessLoader); ok {
					fr.Regs[dst] = sl.SeamlessLoad(fr.W, t, addr)
				} else {
					fr.Regs[dst] = fr.Env.Load(fr.W, t, addr)
				}
				return next
			})
			return
		}
		c.code = append(c.code, func(fr *exec.Frame) int {
			addr := uint64(po.get(fr).I)
			if addr == 0 {
				exec.Errs(nilMsg)
			}
			fr.Regs[dst] = fr.Env.Load(fr.W, t, addr)
			return next
		})

	case *ir.Store:
		po := c.operand(t.Ptr)
		vo := c.operand(t.Val)
		nilMsg := fmt.Sprintf("interp: nil dereference: %q in @%s", t.String(), c.fn.FName)
		c.code = append(c.code, func(fr *exec.Frame) int {
			addr := uint64(po.get(fr).I)
			if addr == 0 {
				exec.Errs(nilMsg)
			}
			fr.Env.Store(fr.W, t, addr, vo.get(fr))
			return next
		})

	case *ir.BinOp:
		c.emitBinOp(t, next)

	case *ir.Cmp:
		c.emitCmp(t, next)

	case *ir.Cast:
		dst := c.slots[t]
		vo := c.operand(t.Val)
		to := t.Type()
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = exec.Cast(vo.get(fr), to)
			return next
		})

	case *ir.FieldAddr:
		dst := c.slots[t]
		bo := c.operand(t.X)
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = fr.Env.FieldAddr(fr.W, t, bo.get(fr))
			return next
		})

	case *ir.IndexAddr:
		dst := c.slots[t]
		bo := c.operand(t.X)
		io := c.operand(t.Index)
		stride := c.env.ElemStride(t.Type().(ir.PointerType).Elem)
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = exec.Val{I: bo.get(fr).I + io.get(fr).I*stride}
			return next
		})

	case *ir.Call:
		dst := c.slots[t]
		co := c.operand(t.Callee)
		argOps := make([]operand, len(t.Args))
		for i, a := range t.Args {
			argOps[i] = c.operand(a)
		}
		c.code = append(c.code, func(fr *exec.Frame) int {
			args := make([]exec.Val, len(argOps))
			for i := range argOps {
				args[i] = argOps[i].get(fr)
			}
			fr.Regs[dst] = fr.Env.Call(fr.W, t, co.get(fr), args)
			return next
		})

	default:
		// Totality guard: an instruction kind the compiler does not
		// know lowers to a step that raises the interpreter's error at
		// runtime, so compiling a unit can never fail.
		msg := fmt.Sprintf("interp: unknown instruction %T", in)
		c.code = append(c.code, func(fr *exec.Frame) int {
			exec.Errs(msg)
			return -1
		})
	}
}

// emitBinOp specializes the hot integer operators into fused steps (the
// float and error paths fall back to the shared exec.BinOp semantics).
func (c *fnCompiler) emitBinOp(t *ir.BinOp, next int) {
	dst := c.slots[t]
	xo, yo := c.operand(t.X), c.operand(t.Y)
	switch t.Op {
	case ir.OpAdd:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpAdd, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I + y.I}
			}
			return next
		})
	case ir.OpSub:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpSub, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I - y.I}
			}
			return next
		})
	case ir.OpMul:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpMul, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I * y.I}
			}
			return next
		})
	case ir.OpAnd:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpAnd, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I & y.I}
			}
			return next
		})
	case ir.OpOr:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpOr, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I | y.I}
			}
			return next
		})
	case ir.OpXor:
		c.code = append(c.code, func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.BinOp(ir.OpXor, x, y)
			} else {
				fr.Regs[dst] = exec.Val{I: x.I ^ y.I}
			}
			return next
		})
	default:
		op := t.Op
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = exec.BinOp(op, xo.get(fr), yo.get(fr))
			return next
		})
	}
}

// emitCmp specializes the integer comparisons (float operands fall back
// to the shared exec.Cmp semantics).
func (c *fnCompiler) emitCmp(t *ir.Cmp, next int) {
	dst := c.slots[t]
	xo, yo := c.operand(t.X), c.operand(t.Y)
	intCmp := func(test func(a, b int64) bool, pred ir.CmpPred) exec.Step {
		return func(fr *exec.Frame) int {
			x, y := xo.get(fr), yo.get(fr)
			if x.Fl || y.Fl {
				fr.Regs[dst] = exec.Cmp(pred, x, y)
			} else if test(x.I, y.I) {
				fr.Regs[dst] = exec.Val{I: 1}
			} else {
				fr.Regs[dst] = exec.Val{}
			}
			return next
		}
	}
	switch t.Pred {
	case ir.CmpEq:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a == b }, t.Pred))
	case ir.CmpNe:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a != b }, t.Pred))
	case ir.CmpLt:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a < b }, t.Pred))
	case ir.CmpLe:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a <= b }, t.Pred))
	case ir.CmpGt:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a > b }, t.Pred))
	case ir.CmpGe:
		c.code = append(c.code, intCmp(func(a, b int64) bool { return a >= b }, t.Pred))
	default:
		pred := t.Pred
		c.code = append(c.code, func(fr *exec.Frame) int {
			fr.Regs[dst] = exec.Cmp(pred, xo.get(fr), yo.get(fr))
			return next
		})
	}
}
