package compile

import (
	"testing"

	"privagic/internal/exec"
	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/prt"
)

// stubEnv satisfies exec.Env for pure-compute tests: compile-time
// queries answer neutrally, runtime seams fail the test if reached.
type stubEnv struct{ t *testing.T }

func (e *stubEnv) GlobalAddr(g *ir.Global) exec.Val   { return exec.IV(0x1000) }
func (e *stubEnv) FuncValue(fn *ir.Function) exec.Val { return exec.IV(1) }
func (e *stubEnv) ElemStride(elem ir.Type) int64      { return elem.Size() }
func (e *stubEnv) Alloca(w *prt.Worker, t *ir.Alloca) exec.Val {
	e.t.Fatalf("unexpected Alloca %s", t)
	return exec.Val{}
}
func (e *stubEnv) Malloc(w *prt.Worker, t *ir.Malloc, count exec.Val) exec.Val {
	e.t.Fatalf("unexpected Malloc %s", t)
	return exec.Val{}
}
func (e *stubEnv) Load(w *prt.Worker, t *ir.Load, addr uint64) exec.Val {
	e.t.Fatalf("unexpected Load %s", t)
	return exec.Val{}
}
func (e *stubEnv) Store(w *prt.Worker, t *ir.Store, addr uint64, v exec.Val) {
	e.t.Fatalf("unexpected Store %s", t)
}
func (e *stubEnv) FieldAddr(w *prt.Worker, t *ir.FieldAddr, base exec.Val) exec.Val {
	e.t.Fatalf("unexpected FieldAddr %s", t)
	return exec.Val{}
}
func (e *stubEnv) Call(w *prt.Worker, t *ir.Call, callee exec.Val, args []exec.Val) exec.Val {
	e.t.Fatalf("unexpected Call %s", t)
	return exec.Val{}
}

// buildFn compiles a MiniC source through the pass pipeline and returns
// the named function.
func buildFn(t *testing.T, src, name string) *ir.Function {
	t.Helper()
	mod, err := minic.Compile("test.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	passes.RunAll(mod)
	fn := mod.Func(name)
	if fn == nil {
		t.Fatalf("no function %q", name)
	}
	return fn
}

// loopSrc has a φ-carrying loop plus a diamond, exercising slot
// assignment, block layout, and edge copies.
const loopSrc = `
long work(long n, long seed) {
	long acc = seed;
	for (long i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) {
			acc = acc + i * 3;
		} else {
			acc = acc - i;
		}
	}
	return acc;
}
`

// TestSlotAllocation checks the frame-slot invariants: parameters occupy
// the leading slots in order, every value-producing instruction gets a
// unique slot, and NumSlots is exactly the count of assigned slots.
func TestSlotAllocation(t *testing.T) {
	fn := buildFn(t, loopSrc, "work")
	u := New([]*ir.Function{fn}, &stubEnv{t}, Options{})
	cf := u.Fn(fn)
	if cf == nil {
		t.Fatal("function was not compiled")
	}
	if cf.NumParams != len(fn.Params) {
		t.Fatalf("NumParams = %d, want %d", cf.NumParams, len(fn.Params))
	}
	for i, p := range fn.Params {
		s, ok := cf.SlotOf(p)
		if !ok || s != i {
			t.Errorf("param %d slot = %d (ok=%v), want %d", i, s, ok, i)
		}
	}
	seen := map[int]ir.Value{}
	record := func(v ir.Value) {
		s, ok := cf.SlotOf(v)
		if !ok {
			t.Errorf("value %v has no slot", v)
			return
		}
		if s < 0 || s >= cf.NumSlots {
			t.Errorf("value %v slot %d outside [0,%d)", v, s, cf.NumSlots)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("slot %d assigned to both %v and %v", s, prev, v)
		}
		seen[s] = v
	}
	for _, p := range fn.Params {
		record(p)
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if v, ok := in.(ir.Value); ok {
				record(v)
			}
		}
	}
	if len(seen) != cf.NumSlots {
		t.Errorf("NumSlots = %d but %d slots assigned", cf.NumSlots, len(seen))
	}
}

// TestJumpResolution checks the block layout: each block's entry PC is
// the step index of its first non-φ instruction, blocks are laid out
// contiguously (φs contribute no steps), and the code length matches the
// layout total.
func TestJumpResolution(t *testing.T) {
	fn := buildFn(t, loopSrc, "work")
	u := New([]*ir.Function{fn}, &stubEnv{t}, Options{})
	cf := u.Fn(fn)
	if cf == nil {
		t.Fatal("function was not compiled")
	}
	pc := 0
	for _, b := range fn.Blocks {
		got, ok := cf.BlockPC(b)
		if !ok {
			t.Fatalf("block %%%s has no PC", b.BName)
		}
		if got != pc {
			t.Errorf("block %%%s PC = %d, want %d", b.BName, got, pc)
		}
		nphi := 0
		for _, in := range b.Instrs {
			if _, isPhi := in.(*ir.Phi); !isPhi {
				break
			}
			nphi++
		}
		pc += len(b.Instrs) - nphi
		if b.Terminator() == nil {
			pc++
		}
	}
	if len(cf.Code) != pc {
		t.Errorf("len(Code) = %d, want %d from the block layout", len(cf.Code), pc)
	}
	if u.Steps != len(cf.Code) {
		t.Errorf("Unit.Steps = %d, want %d", u.Steps, len(cf.Code))
	}
}

// TestCompiledLoopExecutes runs the compiled loop on a bare frame (no
// seams needed after mem2reg: the body is pure arithmetic and φs) and
// checks the result against a Go reimplementation — including the φ
// parallel-copy semantics the loop's carried values depend on.
func TestCompiledLoopExecutes(t *testing.T) {
	fn := buildFn(t, loopSrc, "work")
	u := New([]*ir.Function{fn}, &stubEnv{t}, Options{})
	cf := u.Fn(fn)
	if cf == nil {
		t.Fatal("function was not compiled")
	}
	model := func(n, seed int64) int64 {
		acc := seed
		for i := int64(0); i < n; i++ {
			if i%2 == 0 {
				acc += i * 3
			} else {
				acc -= i
			}
		}
		return acc
	}
	for _, tc := range [][2]int64{{0, 5}, {1, 0}, {7, -3}, {100, 12345}} {
		fr := &exec.Frame{Regs: make([]exec.Val, cf.NumSlots), Env: &stubEnv{t}}
		fr.Regs[0] = exec.IV(tc[0])
		fr.Regs[1] = exec.IV(tc[1])
		got := exec.Run(cf.Code, fr)
		if want := model(tc[0], tc[1]); got.I != want {
			t.Errorf("work(%d, %d) = %d, want %d", tc[0], tc[1], got.I, want)
		}
	}
}

// TestEmptyAndDuplicateFunctionsSkipped checks New's input hygiene.
func TestEmptyAndDuplicateFunctionsSkipped(t *testing.T) {
	fn := buildFn(t, loopSrc, "work")
	empty := &ir.Function{FName: "empty"}
	u := New([]*ir.Function{fn, fn, nil, empty}, &stubEnv{t}, Options{})
	if u.Len() != 1 {
		t.Errorf("Len = %d, want 1 (duplicates, nils, and empty bodies skipped)", u.Len())
	}
	if u.Fn(empty) != nil {
		t.Error("empty function was compiled")
	}
}
