package crossing_test

// Calibration and differential tests for the crossing analyzer and
// optimizer, over the runnable example corpus:
//
//   - TestCalibration is the ±10% acceptance gate: the analyzer's static
//     predicted crossings/op must land within 10% of what the tracer
//     actually measures, program by program (split-malloc traffic is
//     excluded from the static side — the runtime performs those
//     allocations without queue messages, so the tracer cannot see them).
//
//   - TestOptimizerDifferential is the soak: every runnable program is
//     compiled twice (reference vs OptimizeCrossings, both under strict
//     audit) and run to completion; return values and program output
//     must match exactly, and the optimizer must never increase the
//     measured message count.

import (
	"testing"

	"privagic"
	"privagic/internal/obs"
	"privagic/internal/passes/crossing"
	"privagic/internal/sources"
)

// runnable is the corpus with runnable entries: (name, src, entry, args).
var runnable = []struct {
	name  string
	src   string
	entry string
	args  []int64
}{
	{"figure6", sources.Figure6, "main", nil},
	{"hashmap1", sources.HashmapColored1, "run_ycsb", []int64{64, 100}},
	{"hashmap2", sources.HashmapColored2, "run_ycsb", []int64{64, 100}},
	{"memcached", sources.MemcachedCoreColored, "run_ycsb", []int64{64, 100}},
}

func TestCalibration(t *testing.T) {
	for _, p := range runnable {
		for _, optimize := range []bool{false, true} {
			name := p.name
			if optimize {
				name += "_optimized"
			}
			t.Run(name, func(t *testing.T) {
				opts := privagic.Options{
					Mode:              privagic.Relaxed,
					Entries:           []string{p.entry},
					OptimizeCrossings: optimize,
				}
				prog, err := privagic.Compile(p.name+".c", p.src, opts)
				if err != nil {
					t.Fatal(err)
				}
				rep := prog.CrossingReports(nil)[p.entry]
				if rep == nil {
					t.Fatalf("no crossing report for entry %s", p.entry)
				}

				inst := prog.Instantiate(nil)
				defer inst.Close()
				inst.EnableObservability(privagic.ObservabilityOptions{Trace: true, TraceBuffer: 1 << 16})
				if _, err := inst.Call(p.entry, p.args...); err != nil {
					t.Fatal(err)
				}
				var sends []crossing.TraceSend
				for _, ev := range inst.TraceEvents() {
					if ev.Kind == obs.EvSend {
						sends = append(sends, crossing.TraceSend{
							Chunk: int(ev.Chunk), Tag: int(ev.Tag), Dst: int(ev.Worker),
						})
					}
				}
				measured := 0.0
				for _, m := range crossing.MeasuredEdges(sends, rep.OpsPerCall) {
					measured += m
				}
				// Split allocations ride the boundary without queue
				// messages: invisible to the tracer, excluded here.
				static := 0.0
				for _, e := range rep.Edges {
					if e.Kind != crossing.KindSplit {
						static += e.PerOp
					}
				}
				if measured == 0 {
					t.Fatalf("tracer measured no crossings (static %.3f)", static)
				}
				dev := 100 * (static - measured) / measured
				t.Logf("static %.3f vs measured %.3f crossings/op (%+.1f%%)", static, measured, dev)
				if dev > 10 || dev < -10 {
					t.Errorf("static prediction off by %+.1f%% (static %.3f, measured %.3f); the ±10%% calibration gate failed",
						dev, static, measured)
				}
			})
		}
	}
}

func TestOptimizerDifferential(t *testing.T) {
	for _, p := range runnable {
		t.Run(p.name, func(t *testing.T) {
			run := func(optimize bool) (int64, string, int64) {
				opts := privagic.Options{
					Mode:              privagic.Relaxed,
					Entries:           []string{p.entry},
					Audit:             privagic.AuditStrict,
					OptimizeCrossings: optimize,
				}
				prog, err := privagic.Compile(p.name+".c", p.src, opts)
				if err != nil {
					t.Fatalf("compile (optimize=%v): %v", optimize, err)
				}
				inst := prog.Instantiate(nil)
				defer inst.Close()
				ret, err := inst.Call(p.entry, p.args...)
				if err != nil {
					t.Fatalf("run (optimize=%v): %v", optimize, err)
				}
				_, msgs, _, _ := inst.Meter().Counts()
				return ret, inst.Output(), msgs
			}
			rret, rout, rmsgs := run(false)
			oret, oout, omsgs := run(true)
			if rret != oret {
				t.Errorf("optimized run diverged: ret %d vs %d", rret, oret)
			}
			if rout != oout {
				t.Errorf("optimized run diverged in output:\nref:\n%s\nopt:\n%s", rout, oout)
			}
			if omsgs > rmsgs {
				t.Errorf("optimizer increased message count: %d -> %d", rmsgs, omsgs)
			}
			t.Logf("messages %d -> %d", rmsgs, omsgs)
		})
	}
}
