package crossing

import (
	"privagic/internal/ir"
	"privagic/internal/partition"
)

// ForceFuse rewrites every spawn of the named chunk into a direct call,
// deliberately bypassing FuseBlocker. The negative-corpus tests use it to
// prove the audit validator independently re-derives the fusion rule:
// an illegal fusion the optimizer would reject must also be caught when
// something else (a bug, a hand-edited plan) applies it anyway.
func ForceFuse(pp *partition.Program, chunkName string) bool {
	o := &optimizer{pp: pp, res: &OptResult{}, fnChunk: map[*ir.Function]*partition.Chunk{}}
	for _, ch := range pp.ChunkByID {
		o.fnChunk[ch.Fn] = ch
	}
	for _, tc := range pp.ChunkByID {
		if tc.Name() != chunkName {
			continue
		}
		for _, plan := range pp.Plans {
			for _, c := range plan.Spawns {
				if plan.Target.Chunks[c] == tc {
					return o.fuseSites(tc, plan.FArgIdx)
				}
			}
		}
	}
	return false
}

// ForceCoalesceProducer replaces the named producer chunk's sends for the
// given tags with one vectored send, leaving every consumer's waits
// untouched — a deliberately half-applied rewrite that bypasses the
// optimizer's consumer-side legality checks. The negative-corpus tests
// use it to prove the audit validator's message-plan cross-check catches
// a coalesce whose receive side cannot co-locate.
func ForceCoalesceProducer(pp *partition.Program, prodName string, tags []int) bool {
	want := map[int]bool{}
	for _, t := range tags {
		want[t] = true
	}
	for _, prod := range pp.ChunkByID {
		if prod.Name() != prodName {
			continue
		}
		for _, b := range prod.Fn.Blocks {
			var sites []sendSite
			for i, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok || !isIntr(call, partition.IntrSend) {
					continue
				}
				dst, dok := constArg(call, 0)
				tag, tok := constArg(call, 1)
				if !dok || !tok || !want[int(tag)] {
					continue
				}
				sites = append(sites, sendSite{idx: i, call: call, dst: int(dst), tag: int(tag)})
			}
			if len(sites) < 2 {
				continue
			}
			newTag := pp.AllocTag()
			args := []ir.Value{ir.I64Const(int64(sites[0].dst)), ir.I64Const(int64(newTag))}
			for _, s := range sites {
				v := ir.Value(ir.I64Const(0))
				if len(s.call.Args) > 2 {
					v = s.call.Args[2]
				}
				args = append(args, v)
			}
			vec := ir.NewCallInstr(prod.Fn, pp.Intrinsic(partition.IntrSendV), args...)
			b.Splice(sites[len(sites)-1].idx, vec)
			for i := len(sites) - 2; i >= 0; i-- {
				b.Splice(sites[i].idx)
			}
			return true
		}
	}
	return false
}
