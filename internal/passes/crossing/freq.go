package crossing

import (
	"privagic/internal/ir"
)

// Estimator carries the frequency heuristics. Counted loops are exact;
// everything else is a calibrated guess, checked against tracer
// measurements by the calibration test (±10% on the example corpus).
type Estimator struct {
	// DefaultTrip is the assumed iteration count of an unknown-bound
	// loop with no early exit.
	DefaultTrip float64
	// SearchTrip is the assumed iteration count of a probe loop (early
	// exit from the body): chains are short, probes usually hit early.
	SearchTrip float64
	// ColdExit is the probability that a probe loop falls off its
	// header exit (the not-found / grow path) instead of returning from
	// the body. Allocation-bearing exit paths amortize away in steady
	// state, so this is well below half.
	ColdExit float64
	// BranchProb is the taken-probability of each side of a
	// data-dependent two-way branch.
	BranchProb float64
}

// DefaultEstimator is the calibrated default (see TestCalibration).
func DefaultEstimator() Estimator {
	return Estimator{DefaultTrip: 8, SearchTrip: 1, ColdExit: 0.125, BranchProb: 0.5}
}

// Freq holds estimated per-block execution counts for one function body,
// normalized to one invocation of the function.
type Freq struct {
	Block map[*ir.Block]float64
	Loops *LoopInfo
}

// EstimateFreq propagates execution frequency from the entry block over
// the acyclic (back-edge-free) CFG. Loop headers multiply incoming mass by
// the loop's trip estimate; a loop's exiting branch returns the entry mass
// (scaled by ColdExit for search loops) to the blocks after the loop; all
// other two-way branches split by BranchProb.
func EstimateFreq(fn *ir.Function, est Estimator) *Freq {
	li := AnalyzeLoops(fn)
	fr := &Freq{Block: map[*ir.Block]float64{}, Loops: li}
	if len(fn.Blocks) == 0 {
		return fr
	}

	// Edge frequencies accumulate into successor blocks in reverse
	// postorder over forward edges.
	order := forwardRPO(fn, li)
	edge := map[[2]*ir.Block]float64{}
	for i, b := range order {
		f := 0.0
		if i == 0 {
			f = 1.0
		}
		for _, p := range b.Preds() {
			if li.isBackEdge(p, b) {
				continue
			}
			f += edge[[2]*ir.Block{p, b}]
		}
		entryMass := f
		if l := li.ByHeader[b]; l != nil {
			f *= trip(l, est)
		}
		fr.Block[b] = f

		switch t := b.Terminator().(type) {
		case *ir.Br:
			edge[[2]*ir.Block{b, t.Target}] += f
		case *ir.CondBr:
			l := innermostWithExit(li, b)
			switch {
			case l != nil && b == l.Header && exitsLoop(l, t):
				// The loop's own exiting test: the exit edge
				// carries the mass that entered the loop (every
				// entry eventually leaves), scaled down when
				// body early-exits drain most of it first.
				exitF := entryMass
				if l.Search {
					exitF = entryMass * est.ColdExit
				}
				if exitF > f {
					exitF = f
				}
				out, in := t.Then, t.Else
				if l.Blocks[t.Then] {
					out, in = t.Else, t.Then
				}
				edge[[2]*ir.Block{b, out}] += exitF
				edge[[2]*ir.Block{b, in}] += f - exitF
			default:
				edge[[2]*ir.Block{b, t.Then}] += f * est.BranchProb
				edge[[2]*ir.Block{b, t.Else}] += f * (1 - est.BranchProb)
			}
		}
	}
	return fr
}

// At returns the estimated execution count of the block holding in.
func (fr *Freq) At(in ir.Instr) float64 {
	if b := in.Parent(); b != nil {
		return fr.Block[b]
	}
	return 0
}

func trip(l *Loop, est Estimator) float64 {
	switch {
	case l.KnownTrip:
		return l.Trip
	case l.Search:
		return est.SearchTrip
	default:
		return est.DefaultTrip
	}
}

// innermostWithExit returns the innermost loop containing b for which b's
// terminator is a loop-exiting branch, or nil.
func innermostWithExit(li *LoopInfo, b *ir.Block) *Loop {
	for l := li.Innermost[b]; l != nil; l = l.Parent {
		if cb, ok := b.Terminator().(*ir.CondBr); ok && exitsLoop(l, cb) {
			return l
		}
	}
	return nil
}

func exitsLoop(l *Loop, cb *ir.CondBr) bool {
	return l.Blocks[cb.Then] != l.Blocks[cb.Else]
}

// forwardRPO is a reverse postorder over the CFG with back edges removed,
// so every block is visited after all of its forward predecessors.
func forwardRPO(fn *ir.Function, li *LoopInfo) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			if li.isBackEdge(b, s) {
				continue
			}
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(fn.Blocks[0])
	out := make([]*ir.Block, len(post))
	for i, b := range post {
		out[len(post)-1-i] = b
	}
	return out
}
