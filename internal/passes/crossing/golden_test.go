package crossing_test

// Golden-file tests for the -crossings surface: every shared example
// program's static crossing-cost report is rendered exactly as
// privagic-explain prints it — once for the reference partition and once
// after the crossing optimizer, with the optimizer's rewrite/rejection
// summary in between. Run with -update to rewrite the expectations after
// an intentional change to the analyzer, the estimator, or the optimizer.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"privagic"
	"privagic/internal/sources"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPrograms mirrors the audit package's five-example corpus.
var goldenPrograms = []struct {
	name    string
	src     string
	entries []string
}{
	{"figure6", sources.Figure6, []string{"main"}},
	{"wallet", sources.Wallet, nil},
	{"figure3b", sources.Figure3b, nil},
	{"hashmap2", sources.HashmapColored2, []string{"run_ycsb"}},
	{"memcached", sources.MemcachedCoreColored, []string{"run_ycsb"}},
}

func TestGoldenCrossings(t *testing.T) {
	for _, p := range goldenPrograms {
		t.Run(p.name, func(t *testing.T) {
			got := render(p.name, p.src, p.entries)
			path := filepath.Join("testdata", p.name+"_crossings.golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/passes/crossing -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("crossing report changed; diff against %s:\n%s", path, diff(string(want), got))
			}
		})
	}
}

// render produces the deterministic -crossings view of one program in
// relaxed mode: the reference report, the optimizer summary with every
// rejection reason, and the optimized report.
func render(name, src string, entries []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s — relaxed mode\n", name)
	opts := privagic.Options{Mode: privagic.Relaxed, Entries: entries}

	prog, err := privagic.Compile(name+".c", src, opts)
	if err != nil {
		fmt.Fprintf(&b, "compile error: %v\n", err)
		return b.String()
	}
	writeReports(&b, prog)

	opts.OptimizeCrossings = true
	oprog, err := privagic.Compile(name+".c", src, opts)
	if err != nil {
		fmt.Fprintf(&b, "optimized compile error: %v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "optimizer: %s\n", oprog.CrossingOpt.Summary())
	for _, rej := range oprog.CrossingOpt.Rejected {
		fmt.Fprintf(&b, "  reject [%s] %s: %s\n", rej.Kind, rej.Where, rej.Reason)
	}
	writeReports(&b, oprog)
	return b.String()
}

func writeReports(b *strings.Builder, prog *privagic.Program) {
	reports := prog.CrossingReports(nil)
	names := make([]string, 0, len(reports))
	for n := range reports {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b.WriteString(reports[n].Table(nil))
	}
}

// diff renders a small line diff (enough to read in test output).
func diff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	return b.String()
}
