// Package crossing is the static crossing-cost analyzer and the partition
// optimizer built on top of it (DESIGN.md §17). The analyzer side computes
// dominator-based natural loops and per-block execution frequencies over
// chunk bodies, then prices every message site — spawn, done, cont
// transport, waiter cont, visible-effect barrier, split-struct allocation —
// against the calibrated SGX cost model, producing a per-entry
// CrossingReport of predicted crossings/op. The optimizer side (optimize.go)
// uses the same facts to fuse message-free unsafe chunks into their
// spawners, coalesce adjacent transports into vectored conts, and merge
// adjacent effect barriers, with every rewrite re-proved by internal/audit.
package crossing

import (
	"privagic/internal/ir"
)

// Loop is one natural loop: a dominator back edge's header plus every
// block that reaches a latch without passing the header. Loops sharing a
// header are merged.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Latch  []*ir.Block
	Parent *Loop
	// Depth is the nesting depth, 1 for an outermost loop.
	Depth int

	// Trip is the estimated iteration count per loop entry. KnownTrip
	// marks the counted-loop pattern (phi over a constant init stepped
	// by a constant, compared against a constant bound) where Trip is
	// exact, not a heuristic.
	Trip      float64
	KnownTrip bool
	// Search marks an unknown-trip loop with an exit edge leaving from a
	// non-header block (the while(p){ if(hit) return; p=p->next } shape):
	// probe loops usually terminate early, so their header fall-off exit
	// is treated as cold (Estimator.ColdExit).
	Search bool
}

// Contains reports whether b is inside the loop body (header included).
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LoopInfo is the per-function loop nest.
type LoopInfo struct {
	Loops    []*Loop
	ByHeader map[*ir.Block]*Loop
	// Innermost maps each block to the innermost loop containing it (nil
	// for straight-line blocks).
	Innermost map[*ir.Block]*Loop
	dom       *ir.DomTree
}

// Depth returns the loop nesting depth of b (0 for straight-line code).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.Innermost[b]; l != nil {
		return l.Depth
	}
	return 0
}

// isBackEdge reports whether src→dst closes a natural loop.
func (li *LoopInfo) isBackEdge(src, dst *ir.Block) bool {
	l := li.ByHeader[dst]
	return l != nil && l.Blocks[src]
}

// AnalyzeLoops detects the natural loops of fn. The caller must have run
// fn.ComputeCFG (chunk bodies always have; the analyzer recomputes
// defensively before calling this).
func AnalyzeLoops(fn *ir.Function) *LoopInfo {
	li := &LoopInfo{
		ByHeader:  map[*ir.Block]*Loop{},
		Innermost: map[*ir.Block]*Loop{},
	}
	if len(fn.Blocks) == 0 {
		return li
	}
	li.dom = ir.Dominators(fn)

	// Back edges: a→h where h dominates a. Merge loops per header.
	for _, a := range fn.Blocks {
		for _, h := range a.Succs() {
			if !li.dom.Dominates(h, a) {
				continue
			}
			l := li.ByHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				li.ByHeader[h] = l
				li.Loops = append(li.Loops, l)
			}
			l.Latch = append(l.Latch, a)
			// Body: reverse-reachable from the latch without
			// passing the header.
			stack := []*ir.Block{a}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				stack = append(stack, b.Preds()...)
			}
		}
	}

	// Nesting: parent = smallest strictly-containing loop.
	for _, l := range li.Loops {
		for _, m := range li.Loops {
			if m == l || !m.Blocks[l.Header] || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range li.Loops {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	// Innermost loop per block: the containing loop with the fewest
	// blocks wins.
	for _, l := range li.Loops {
		for b := range l.Blocks {
			cur := li.Innermost[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				li.Innermost[b] = l
			}
		}
	}

	for _, l := range li.Loops {
		estimateTrip(l)
	}
	return li
}

// estimateTrip classifies the loop: counted (exact trip), search
// (early-exit probe), or plain unknown. The counted pattern is the one the
// front end emits for `for (i = C0; i < N; i = i + S)`: a header phi over
// [C0, preheader] and [inc, latch] with inc = phi + S, compared against a
// constant bound by the header's exiting CondBr.
func estimateTrip(l *Loop) {
	if n, ok := countedTrip(l); ok {
		l.Trip = n
		l.KnownTrip = true
		return
	}
	// An exit edge leaving from a non-header block marks the search
	// shape (early-return probe bodies branch straight to a block that
	// never reaches the latch, e.g. a return block).
	for b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, s := range b.Succs() {
			if !l.Blocks[s] {
				l.Search = true
			}
		}
	}
}

// countedTrip matches the constant-bound counted loop and returns its
// exact iteration count.
func countedTrip(l *Loop) (float64, bool) {
	h := l.Header
	cb, ok := h.Terminator().(*ir.CondBr)
	if !ok {
		return 0, false
	}
	// Exactly one successor must leave the loop.
	thenIn, elseIn := l.Blocks[cb.Then], l.Blocks[cb.Else]
	if thenIn == elseIn {
		return 0, false
	}
	cmp, ok := cb.Cond.(*ir.Cmp)
	if !ok || cmp.Parent() != h {
		return 0, false
	}
	// The front end wraps every condition for truthiness as
	// `cmp ne (cast inner to i64), 0`; look through the wrapper to the
	// comparison that actually mentions the induction variable.
	for cmp.Pred == ir.CmpNe {
		z, zok := cmp.Y.(*ir.ConstInt)
		if !zok || z.V != 0 {
			break
		}
		inner := cmp.X
		if cast, cok := inner.(*ir.Cast); cok {
			inner = cast.Val
		}
		ic, iok := inner.(*ir.Cmp)
		if !iok || ic.Parent() != h {
			break
		}
		cmp = ic
	}
	// Normalize to (iv, pred, bound) with the induction side on the left.
	iv, pred, bound := cmp.X, cmp.Pred, cmp.Y
	if _, isConst := cmp.X.(*ir.ConstInt); isConst {
		iv, bound = cmp.Y, cmp.X
		switch pred {
		case ir.CmpLt:
			pred = ir.CmpGt
		case ir.CmpLe:
			pred = ir.CmpGe
		case ir.CmpGt:
			pred = ir.CmpLt
		case ir.CmpGe:
			pred = ir.CmpLe
		}
	}
	bc, ok := bound.(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	phi, ok := iv.(*ir.Phi)
	if !ok || phi.Parent() != h {
		return 0, false
	}
	// If the loop stays on the FALSE side the predicate is inverted.
	if !l.Blocks[cb.Then] {
		switch pred {
		case ir.CmpLt:
			pred = ir.CmpGe
		case ir.CmpLe:
			pred = ir.CmpGt
		case ir.CmpGt:
			pred = ir.CmpLe
		case ir.CmpGe:
			pred = ir.CmpLt
		case ir.CmpEq:
			pred = ir.CmpNe
		case ir.CmpNe:
			pred = ir.CmpEq
		}
	}
	var init *ir.ConstInt
	var step int64
	stepOK := false
	for _, e := range phi.Edges {
		if l.Blocks[e.Pred] {
			// Latch value: phi + const step (either operand order).
			bo, ok := e.Val.(*ir.BinOp)
			if !ok || (bo.Op != ir.OpAdd && bo.Op != ir.OpSub) {
				return 0, false
			}
			var c *ir.ConstInt
			if bo.X == ir.Value(phi) {
				c, ok = bo.Y.(*ir.ConstInt)
			} else if bo.Y == ir.Value(phi) && bo.Op == ir.OpAdd {
				c, ok = bo.X.(*ir.ConstInt)
			} else {
				return 0, false
			}
			if !ok {
				return 0, false
			}
			step = c.V
			if bo.Op == ir.OpSub {
				step = -step
			}
			stepOK = true
		} else if c, ok := e.Val.(*ir.ConstInt); ok {
			init = c
		} else {
			return 0, false
		}
	}
	if init == nil || !stepOK || step == 0 {
		return 0, false
	}
	span := bc.V - init.V
	switch pred {
	case ir.CmpLt:
	case ir.CmpLe:
		span++
	case ir.CmpGt:
		span = -span
	case ir.CmpGe:
		span = -span + 1
	case ir.CmpNe:
		if span%step != 0 {
			return 0, false
		}
	default:
		return 0, false
	}
	if pred == ir.CmpGt || pred == ir.CmpGe {
		step = -step
	}
	if step <= 0 || span <= 0 {
		return 0, false
	}
	trips := (span + step - 1) / step
	return float64(trips), true
}
