package crossing_test

// The negative corpus: programs constructed so a specific optimizer
// rewrite is illegal. Each case asserts defense in depth — the optimizer's
// own legality analysis rejects the rewrite with the expected reason, AND
// the audit validator independently catches the rewrite when a test hook
// forces it onto the plan anyway (the auditor re-derives the rule from
// the partition invariants; it never trusts the optimizer's verdict).

import (
	"strings"
	"testing"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/passes/crossing"
)

// fuseAcrossDeclassify spawns an unsafe chunk whose body performs a
// sanctioned declassify copy. Fusing it would execute the
// declassification site on the enclave's worker, so fusion must stay
// rejected.
const fuseAcrossDeclassify = `
ignore void declassify(char* dst, char* src, long n);

char secret[64];
char out[64];
long audit_count;

void publish(long i) {
    declassify(out, secret, 8);
    audit_count = audit_count + i;
}

long color(red) key;

void enc_step(long i) {
    key = key + i;
    publish(i);
}

entry long run() {
    long s = 0;
    for (long i = 0; i < 4; i++) {
        enc_step(i);
        s = s + 1;
    }
    return s + audit_count;
}
`

// coalesceAcrossStore produces two cont transports with an intervening U
// def-use between the consumer's waits: the first value feeds U state
// (read of g1) before the second value arrives. Coalescing them would
// need both values at one receive point, so the rewrite must stay
// rejected. (A U *store* between the transports is barrier-protected,
// which already breaks the producer-side adjacency before the consumer
// check can fire — the U load is the shape that reaches, and must fail,
// the consumer-side legality check.)
const coalesceAcrossStore = `
ignore long reveal(long color(red) v);

long color(red) s1;
long color(red) s2;
long g1;
long sink;

void step(long i) {
    long a = reveal(s1 + i);
    long x = g1 + a;
    long b = reveal(s2 + i);
    sink = sink + x + b;
}

entry long run() {
    long s = 0;
    for (long i = 0; i < 4; i++) {
        step(i);
        s = s + 1;
    }
    return s;
}
`

// compileNegative compiles src in relaxed mode without the optimizer and
// returns the partitioned program for hand-forced rewrites.
func compileNegative(t *testing.T, name, src string, optimize bool) *privagic.Program {
	t.Helper()
	prog, err := privagic.Compile(name+".c", src, privagic.Options{
		Mode:              privagic.Relaxed,
		Entries:           []string{"run"},
		OptimizeCrossings: optimize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// findRejection returns the first optimizer rejection of the given kind
// whose reason contains want.
func findRejection(res *crossing.OptResult, kind, want string) *crossing.Rejection {
	for i, r := range res.Rejected {
		if r.Kind == kind && strings.Contains(r.Reason, want) {
			return &res.Rejected[i]
		}
	}
	return nil
}

func TestNegativeFusionAcrossDeclassify(t *testing.T) {
	// Layer 1: the optimizer rejects the fusion, naming the declassify.
	prog := compileNegative(t, "fusedecl", fuseAcrossDeclassify, true)
	if rej := findRejection(prog.CrossingOpt, "fuse", "declassify"); rej == nil {
		t.Fatalf("optimizer did not reject the fusion across a declassify; rejections: %+v",
			prog.CrossingOpt.Rejected)
	}
	if len(prog.CrossingOpt.Fused) != 0 {
		t.Fatalf("optimizer fused %+v despite the declassify", prog.CrossingOpt.Fused)
	}

	// Layer 2: force the same fusion onto a fresh plan; the audit
	// validator must catch the cross-color direct call on its own.
	fresh := compileNegative(t, "fusedecl", fuseAcrossDeclassify, false)
	pp := fresh.Partitioned
	target := ""
	for _, ch := range pp.ChunkByID {
		if ch.Color.IsUntrusted() && strings.HasPrefix(ch.Part.Spec.Key, "publish") {
			target = ch.Name()
		}
	}
	if target == "" {
		t.Fatal("no unsafe publish chunk in the partition")
	}
	if !crossing.ForceFuse(pp, target) {
		t.Fatalf("ForceFuse did not rewrite any spawn of %s", target)
	}
	res := audit.Run(pp)
	if res.Err() == nil {
		t.Fatal("audit passed a forced fusion across a declassify; the validator must re-derive the rule")
	}
	if !strings.Contains(res.Err().Error(), "direct calls stay within a color") {
		t.Errorf("audit rejected the forced fusion for an unexpected reason:\n%v", res.Err())
	}
}

func TestNegativeCoalesceAcrossStore(t *testing.T) {
	// Layer 1: the optimizer rejects the coalesce — the consumer's waits
	// are separated by a U store.
	prog := compileNegative(t, "coalstore", coalesceAcrossStore, true)
	if rej := findRejection(prog.CrossingOpt, "coalesce", "not pure scalar"); rej == nil {
		t.Fatalf("optimizer did not reject the coalesce across a U store; rejections: %+v",
			prog.CrossingOpt.Rejected)
	}
	if len(prog.CrossingOpt.Coalesced) != 0 {
		t.Fatalf("optimizer coalesced %+v despite the store between the waits", prog.CrossingOpt.Coalesced)
	}

	// Layer 2: force the producer side of the rewrite only; the audit's
	// message-plan cross-check must flag the orphaned waits.
	fresh := compileNegative(t, "coalstore", coalesceAcrossStore, false)
	pp := fresh.Partitioned
	var prodName string
	var tags []int
	for _, pf := range pp.Funcs {
		if !strings.HasPrefix(pf.Spec.Key, "step") {
			continue
		}
		for _, tr := range pp.Transports(pf) {
			tags = append(tags, tr.Tag)
		}
		for _, ch := range pf.Chunks {
			if !ch.Color.IsUntrusted() {
				prodName = ch.Name()
			}
		}
	}
	if prodName == "" || len(tags) < 2 {
		t.Fatalf("unexpected partition shape: producer %q, transport tags %v", prodName, tags)
	}
	if !crossing.ForceCoalesceProducer(pp, prodName, tags) {
		t.Fatalf("ForceCoalesceProducer did not rewrite %s", prodName)
	}
	res := audit.Run(pp)
	if res.Err() == nil {
		t.Fatal("audit passed a one-sided coalesce; the message-plan cross-check must flag the orphaned waits")
	}
}
