package crossing

import (
	"fmt"
	"sort"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/typing"
)

// The partition optimizer: three crossing-report-guided rewrites over
// built chunk bodies, each with a self-contained legality check and each
// re-proved independently by internal/audit strict validation after the
// pass runs (the caller re-runs the auditor; see privagic.Compile).
//
//  1. Fusion: a spawned unsafe chunk whose body exchanges no messages at
//     all (no intrinsics, no chunk calls, no sanctioned boundary copies,
//     no split allocations) is called directly on the spawner's worker
//     instead — the spawn/done round trip disappears. Legal only in
//     relaxed mode: an enclave worker may execute unsafe-memory code, and
//     the chunk's own color discipline (already proved by typing and
//     audit) guarantees it cannot touch any enclave's memory.
//  2. Cont coalescing: adjacent transports with identical consumer sets
//     whose producing sends and consuming waits are separated only by
//     pure scalar instructions collapse into one vectored cont per
//     destination (__pv_sendv / __pv_waitv / __pv_elem).
//  3. Barrier merging: two adjacent visible-effect barrier intervals with
//     nothing but pure scalar instructions between them (on the unsafe
//     side and in every sibling) become one frozen interval — the second
//     interval's token/ack round trips disappear, and with them the
//     boundary snapshot refresh between the two effects, which the
//     purity check proves no sibling could have observed.

// OptResult records what the optimizer did (and refused to do).
type OptResult struct {
	Fused     []FusedChunk
	Coalesced []CoalescedGroup
	Merged    []MergedBarrier
	Rejected  []Rejection
}

// Crossings returns the predicted number of messages per relevant
// execution saved by the recorded rewrites (2 per fused activation, one
// per extra coalesced tag per consumer, 2 per merged barrier per
// sibling); it is the static side of the crossopt experiment.
func (r *OptResult) Summary() string {
	return fmt.Sprintf("fused %d spawn sites, coalesced %d transport groups, merged %d barriers (%d candidates rejected)",
		len(r.Fused), len(r.Coalesced), len(r.Merged), len(r.Rejected))
}

// FusedChunk is one fused spawn site.
type FusedChunk struct {
	Owner  string // owner chunk that spawned
	Target string // fused (formerly spawned) chunk
	Pos    ir.Pos
}

// CoalescedGroup is one run of transports merged into a vectored cont.
type CoalescedGroup struct {
	Fn       string
	Producer string
	Tags     []int
	NewTag   int
	Depth    int
}

// MergedBarrier is one pair of merged barrier intervals.
type MergedBarrier struct {
	Fn         string
	KeptTag    int
	DroppedTag int
	Siblings   int
}

// Rejection is a candidate the legality check refused, with the reason —
// the negative corpus asserts on these.
type Rejection struct {
	Kind   string // "fuse" | "coalesce" | "barrier"
	Where  string
	Reason string
}

// Optimize applies the three rewrites to pp in place. The caller must
// re-run strict audit validation afterwards; Optimize itself only
// guarantees its own legality checks.
func Optimize(pp *partition.Program) *OptResult {
	o := &optimizer{pp: pp, res: &OptResult{}, fnChunk: map[*ir.Function]*partition.Chunk{}}
	for _, ch := range pp.ChunkByID {
		o.fnChunk[ch.Fn] = ch
	}
	if pp.Mode != typing.Hardened {
		o.fusePass()
		o.coalescePass()
		o.barrierPass()
	}
	return o.res
}

type optimizer struct {
	pp      *partition.Program
	res     *OptResult
	fnChunk map[*ir.Function]*partition.Chunk
}

func (o *optimizer) reject(kind, where, reason string) {
	o.res.Rejected = append(o.res.Rejected, Rejection{Kind: kind, Where: where, Reason: reason})
}

// sortedPFs returns the partitioned functions in deterministic order.
func (o *optimizer) sortedPFs() []*partition.PartFunc {
	out := make([]*partition.PartFunc, 0, len(o.pp.Funcs))
	for _, pf := range o.pp.Funcs {
		out = append(out, pf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key < out[j].Spec.Key })
	return out
}

func (o *optimizer) sortedChunks(pf *partition.PartFunc) []*partition.Chunk {
	out := make([]*partition.Chunk, 0, len(pf.Chunks))
	for _, ch := range pf.Chunks {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ---------------------------------------------------------------------------
// Pass 1: fusion.

// fusePass fuses every spawn of a message-free unsafe chunk into a direct
// call on the spawner's worker.
func (o *optimizer) fusePass() {
	// Decide fusibility per target chunk: every plan spawning it must
	// agree (same FArgIdx by construction; no plan may take its call
	// result from the join).
	type target struct {
		plans []*partition.CallPlan
	}
	byChunk := map[*partition.Chunk]*target{}
	for _, plan := range o.pp.Plans {
		for _, c := range plan.Spawns {
			ch := plan.Target.Chunks[c]
			if ch == nil {
				continue
			}
			if byChunk[ch] == nil {
				byChunk[ch] = &target{}
			}
			byChunk[ch].plans = append(byChunk[ch].plans, plan)
		}
	}
	fused := map[*partition.Chunk]bool{}
	for _, tc := range o.pp.ChunkByID {
		t := byChunk[tc]
		if t == nil {
			continue
		}
		if reason := FuseBlocker(o.pp, tc); reason != "" {
			o.reject("fuse", tc.Name(), reason)
			continue
		}
		// A joined result is only attributable to the fused chunk when it
		// is the sole spawned color of its plan (the direct call's return
		// value then substitutes for the join's).
		ambiguous := false
		for _, plan := range t.plans {
			if plan.ResultFromJoin && len(plan.Spawns) > 1 {
				ambiguous = true
			}
		}
		if ambiguous {
			o.reject("fuse", tc.Name(), "the joined result cannot be attributed among multiple spawned colors")
			continue
		}
		if o.fuseSites(tc, t.plans[0].FArgIdx) {
			fused[tc] = true
		}
	}
	// Tighten the plans (and with them the §8 spawn whitelist).
	for _, plan := range o.pp.Plans {
		var kept []ir.Color
		for _, c := range plan.Spawns {
			if ch := plan.Target.Chunks[c]; ch != nil && fused[ch] {
				continue
			}
			kept = append(kept, c)
		}
		plan.Spawns = kept
	}
}

// FuseBlocker re-derives the fusion legality of one spawned chunk and
// returns the first blocking reason, or "" when the chunk is fusible.
// Exported so the audit validator and the optimizer share one definition
// of the rule while each invokes it independently.
func FuseBlocker(pp *partition.Program, tc *partition.Chunk) string {
	if pp.Mode == typing.Hardened {
		return "fusion requires relaxed mode (an enclave worker executing unsafe code violates the hardened Iago rule)"
	}
	if !tc.Color.IsUntrusted() {
		return fmt.Sprintf("chunk runs in enclave %s; only unsafe chunks can execute on a foreign worker", tc.Color)
	}
	fnChunk := map[*ir.Function]bool{}
	for _, ch := range pp.ChunkByID {
		fnChunk[ch.Fn] = true
	}
	blocked := ""
	tc.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if blocked != "" {
			return
		}
		switch v := in.(type) {
		case *ir.Call:
			fn, direct := v.Callee.(*ir.Function)
			if !direct {
				blocked = "body contains an indirect call"
				return
			}
			switch fn.FName {
			case partition.IntrSpawn, partition.IntrSend, partition.IntrSendV,
				partition.IntrWait, partition.IntrWaitV, partition.IntrJoin, partition.IntrElem:
				blocked = fmt.Sprintf("body exchanges messages (%s)", fn.FName)
			case "classify", "declassify", "classify_key":
				blocked = fmt.Sprintf("body contains a sanctioned boundary copy (@%s); declassification sites stay pinned to their own worker", fn.FName)
			default:
				if fnChunk[fn] {
					blocked = fmt.Sprintf("body calls another chunk (%s)", fn.FName)
				}
			}
		case *ir.Malloc:
			if st, ok := v.Elem.(*ir.StructType); ok && pp.Splits[st.Name] != nil {
				blocked = fmt.Sprintf("body allocates split struct %%%s (cross-enclave allocation traffic)", st.Name)
			}
		}
	})
	return blocked
}

// fuseSites rewrites every spawn of tc into a direct call. Returns true
// when at least one site was rewritten (and none was left half-done).
func (o *optimizer) fuseSites(tc *partition.Chunk, fargIdx []int) bool {
	any := false
	for _, ch := range o.pp.ChunkByID {
		if ch == tc {
			continue
		}
		for _, b := range ch.Fn.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				call, ok := b.Instrs[i].(*ir.Call)
				if !ok || !isIntr(call, partition.IntrSpawn) {
					continue
				}
				if id, ok := constArg(call, 0); !ok || int(id) != tc.ID {
					continue
				}
				if o.fuseOne(ch, b, i, call, tc, fargIdx) {
					any = true
				}
			}
		}
	}
	return any
}

// fuseOne rewrites a single spawn site: the spawn becomes a direct call
// with zero-padded non-free arguments, and the site's join count drops by
// one (the join disappears when it hits zero).
func (o *optimizer) fuseOne(ch *partition.Chunk, b *ir.Block, i int, spawn *ir.Call, tc *partition.Chunk, fargIdx []int) bool {
	// Locate the join this site's done would have satisfied.
	var join *ir.Call
	for j := i + 1; j < len(b.Instrs); j++ {
		if c, ok := b.Instrs[j].(*ir.Call); ok && isIntr(c, partition.IntrJoin) {
			join = c
			break
		}
	}
	if join == nil {
		o.reject("fuse", tc.Name(), "spawn site has no join in its block; cannot retire the completion count")
		return false
	}
	n, ok := constArg(join, 0)
	if !ok || n < 1 {
		return false
	}
	// Build the direct call: free args come from the spawn payload in
	// FArgIdx order, every other parameter is zero-padded (spawned
	// chunks never read their colored parameters; audit re-proves it).
	fargs := spawn.Args[2:]
	args := make([]ir.Value, len(tc.Fn.Params))
	for pi, p := range tc.Fn.Params {
		args[pi] = zeroValue(p.Typ)
		for fi, idx := range fargIdx {
			if idx == pi && fi < len(fargs) {
				args[pi] = fargs[fi]
			}
		}
	}
	joinUsed := hasUses(ch.Fn, join)
	if joinUsed {
		// The join's value (the done payload) must be replaceable by the
		// direct call's own return value: single-completion joins only,
		// and the callee must actually return something.
		if n > 1 {
			o.reject("fuse", tc.Name(), "join result is used and merges multiple completions")
			return false
		}
		if tc.Fn.RetTyp == ir.Void {
			o.reject("fuse", tc.Name(), "join result is used but the fused chunk returns nothing")
			return false
		}
	}
	direct := ir.NewCallInstr(ch.Fn, tc.Fn, args...)
	b.Splice(i, direct)
	if n == 1 {
		if joinUsed {
			ch.Fn.ReplaceUses(join, direct)
		}
		if jb := join.Parent(); jb != nil {
			jb.Splice(jb.IndexOf(join))
		}
	} else {
		join.Args[0] = ir.I64Const(n - 1)
	}
	o.res.Fused = append(o.res.Fused, FusedChunk{Owner: ch.Name(), Target: tc.Name(), Pos: spawn.InstrPos()})
	return true
}

// ---------------------------------------------------------------------------
// Pass 2: cont coalescing.

// coalescePass merges adjacent same-consumer transports into vectored
// conts, producer and consumers rewritten together.
func (o *optimizer) coalescePass() {
	for _, pf := range o.sortedPFs() {
		trs := o.pp.Transports(pf)
		if len(trs) < 2 {
			continue
		}
		tagConsumers := map[int][]ir.Color{}
		for _, tr := range trs {
			tagConsumers[tr.Tag] = tr.Consumers
		}
		for _, ch := range o.sortedChunks(pf) {
			o.coalesceChunk(pf, ch, tagConsumers)
		}
	}
}

type sendSite struct {
	idx  int
	call *ir.Call
	dst  int
	tag  int
}

// coalesceChunk scans one producer chunk for runs of adjacent transport
// sends and coalesces each legal run.
func (o *optimizer) coalesceChunk(pf *partition.PartFunc, ch *partition.Chunk, tagConsumers map[int][]ir.Color) {
	for _, b := range ch.Fn.Blocks {
		// Collect this block's transport sends in order.
		var sites []sendSite
		for i, in := range b.Instrs {
			call, ok := in.(*ir.Call)
			if !ok || !isIntr(call, partition.IntrSend) {
				continue
			}
			dst, dok := constArg(call, 0)
			tag, tok := constArg(call, 1)
			if !dok || !tok || tagConsumers[int(tag)] == nil {
				continue
			}
			sites = append(sites, sendSite{idx: i, call: call, dst: int(dst), tag: int(tag)})
		}
		// Group maximal runs of distinct tags with identical consumer
		// sets and only pure instructions between the sends.
		for gi := 0; gi < len(sites); {
			group := []sendSite{sites[gi]}
			tags := []int{sites[gi].tag}
			gj := gi + 1
			for ; gj < len(sites); gj++ {
				prev, next := group[len(group)-1], sites[gj]
				if !sameColors(tagConsumers[next.tag], tagConsumers[tags[0]]) {
					break
				}
				if !o.pureRange(b, prev.idx+1, next.idx) {
					break
				}
				group = append(group, next)
				if next.tag != tags[len(tags)-1] {
					tags = append(tags, next.tag)
				}
			}
			if len(tags) >= 2 {
				// Shrink until every consumer's waits co-locate.
				for len(tags) >= 2 && !o.applyCoalesce(pf, ch, b, group, tags, tagConsumers[tags[0]]) {
					last := tags[len(tags)-1]
					tags = tags[:len(tags)-1]
					for len(group) > 0 && group[len(group)-1].tag == last {
						group = group[:len(group)-1]
					}
				}
			}
			gi = gj
		}
	}
}

// applyCoalesce validates the consumer side of one group and, when legal,
// rewrites producer and consumers. Returns false (no mutation) when a
// consumer's waits do not co-locate.
func (o *optimizer) applyCoalesce(pf *partition.PartFunc, prod *partition.Chunk, b *ir.Block, group []sendSite, tags []int, consumers []ir.Color) bool {
	vecIdx := map[int]int{}
	for i, t := range tags {
		vecIdx[t] = i
	}
	// Validate every consumer first: all the group's waits adjacent in
	// one block, separated only by pure instructions.
	type consumerPlanRec struct {
		ch    *partition.Chunk
		block *ir.Block
		waits []*ir.Call // by block order
		first int
	}
	var rewrites []consumerPlanRec
	for _, cc := range consumers {
		cch := pf.Chunks[cc]
		if cch == nil {
			return false
		}
		var blk *ir.Block
		var waits []*ir.Call
		first, last := -1, -1
		for _, cb := range cch.Fn.Blocks {
			for i, in := range cb.Instrs {
				call, ok := in.(*ir.Call)
				if !ok || !isIntr(call, partition.IntrWait) {
					continue
				}
				tag, tok := constArg(call, 0)
				if !tok {
					continue
				}
				if _, mine := vecIdx[int(tag)]; !mine {
					continue
				}
				if blk == nil {
					blk = cb
				}
				if cb != blk {
					o.reject("coalesce", cch.Name(), fmt.Sprintf("waits for tags %v span blocks; the vector cannot be received at one point", tags))
					return false
				}
				waits = append(waits, call)
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if len(waits) != len(tags) {
			o.reject("coalesce", cch.Name(), fmt.Sprintf("consumer waits %d of the %d grouped tags", len(waits), len(tags)))
			return false
		}
		// Purity between the waits (excluding the waits themselves).
		for i := first; i <= last; i++ {
			in := blk.Instrs[i]
			if c, ok := in.(*ir.Call); ok && isIntr(c, partition.IntrWait) {
				if tag, tok := constArg(c, 0); tok {
					if _, mine := vecIdx[int(tag)]; mine {
						continue
					}
				}
			}
			if !o.pureInstr(in) {
				o.reject("coalesce", cch.Name(), fmt.Sprintf("instruction between coalesced waits is not pure scalar: %s", in))
				return false
			}
		}
		rewrites = append(rewrites, consumerPlanRec{ch: cch, block: blk, waits: waits, first: first})
	}

	// All sides legal: allocate the vector tag and rewrite.
	newTag := o.pp.AllocTag()
	intrSendV := o.pp.Intrinsic(partition.IntrSendV)
	intrWaitV := o.pp.Intrinsic(partition.IntrWaitV)
	intrElem := o.pp.Intrinsic(partition.IntrElem)

	// Producer: one sendv per destination at the last send's position,
	// carrying the group's values in tag order.
	valOf := map[[2]int]ir.Value{} // (tag, dst) -> payload
	dsts := []int{}
	seenDst := map[int]bool{}
	for _, s := range group {
		if len(s.call.Args) > 2 {
			valOf[[2]int{s.tag, s.dst}] = s.call.Args[2]
		}
		if !seenDst[s.dst] {
			seenDst[s.dst] = true
			dsts = append(dsts, s.dst)
		}
	}
	lastIdx := group[len(group)-1].idx
	var news []ir.Instr
	for _, d := range dsts {
		args := []ir.Value{ir.I64Const(int64(d)), ir.I64Const(int64(newTag))}
		for _, t := range tags {
			v := valOf[[2]int{t, d}]
			if v == nil {
				v = ir.I64Const(0)
			}
			args = append(args, v)
		}
		news = append(news, ir.NewCallInstr(prod.Fn, intrSendV, args...))
	}
	// Replace the last send with the sendv run, then delete the rest
	// (back to front so indices stay valid).
	b.Splice(lastIdx, news...)
	for i := len(group) - 2; i >= 0; i-- {
		b.Splice(group[i].idx)
	}

	// Consumers: waitv at the first wait, each wait becomes an element
	// read.
	for _, rw := range rewrites {
		headIdx := rw.block.IndexOf(rw.waits[0])
		head := ir.NewCallInstr(rw.ch.Fn, intrWaitV, ir.I64Const(int64(newTag)))
		rw.block.Splice(headIdx, head, rw.waits[0])
		for _, w := range rw.waits {
			tag, _ := constArg(w, 0)
			elem := ir.NewCallInstr(rw.ch.Fn, intrElem, ir.I64Const(int64(newTag)), ir.I64Const(int64(vecIdx[int(tag)])))
			wi := rw.block.IndexOf(w)
			rw.block.Splice(wi, elem)
			rw.ch.Fn.ReplaceUses(w, elem)
		}
	}

	depth := 0
	if li := AnalyzeLoops(prod.Fn); li != nil {
		depth = li.Depth(b)
	}
	o.res.Coalesced = append(o.res.Coalesced, CoalescedGroup{
		Fn: pf.Spec.Key, Producer: prod.Name(), Tags: append([]int(nil), tags...), NewTag: newTag, Depth: depth,
	})
	return true
}

// ---------------------------------------------------------------------------
// Pass 3: barrier merging.

type interval struct {
	block *ir.Block
	tag   int
	waits []*ir.Call
	sends []*ir.Call
	first int // index of first wait
	last  int // index of last send
}

// barrierPass merges adjacent visible-effect barrier intervals.
func (o *optimizer) barrierPass() {
	for _, pf := range o.sortedPFs() {
		for {
			if !o.mergeOnePair(pf) {
				break
			}
		}
	}
}

// mergeOnePair finds and merges the first legal adjacent interval pair of
// pf, returning true when a merge happened (the caller loops to a fixed
// point, so chains of barriers collapse).
func (o *optimizer) mergeOnePair(pf *partition.PartFunc) bool {
	barrierTags := map[int]bool{}
	for _, tag := range o.pp.BarrierTags(pf) {
		barrierTags[tag] = true
	}
	if len(barrierTags) < 2 {
		return false
	}
	var uch *partition.Chunk
	var siblings []*partition.Chunk
	for _, ch := range o.sortedChunks(pf) {
		if ch.Color.IsUntrusted() {
			uch = ch
		} else {
			siblings = append(siblings, ch)
		}
	}
	if uch == nil || len(siblings) == 0 {
		return false
	}
	ivs := barrierIntervals(uch, barrierTags)
	for i := 0; i+1 < len(ivs); i++ {
		a, b := ivs[i], ivs[i+1]
		if a.block != b.block || a.tag == b.tag {
			continue
		}
		if !o.pureRange(a.block, a.last+1, b.first) {
			o.reject("barrier", uch.Name(), fmt.Sprintf("effectful instruction between barrier intervals %d and %d", a.tag, b.tag))
			continue
		}
		if o.mergeSiblings(pf, uch, siblings, a, b) {
			return true
		}
	}
	return false
}

// mergeSiblings validates the sibling side of a merge and applies the
// whole rewrite. Returns false (no mutation) if any sibling's token/ack
// pairs are not adjacent.
func (o *optimizer) mergeSiblings(pf *partition.PartFunc, uch *partition.Chunk, siblings []*partition.Chunk, a, b *interval) bool {
	type sibRec struct {
		ch         *partition.Chunk
		sendB      *ir.Call
		waitB      *ir.Call
		blk        *ir.Block
	}
	var recs []sibRec
	for _, sib := range siblings {
		sa := sibPair(sib, a.tag)
		sb := sibPair(sib, b.tag)
		if sa == nil || sb == nil || sa.block != sb.block {
			o.reject("barrier", sib.Name(), fmt.Sprintf("sibling token/ack pairs for tags %d/%d are missing or span blocks", a.tag, b.tag))
			return false
		}
		// Adjacency: wait(a) ... send(b) with only pure instructions
		// between, and the b-wait's token must be unused.
		if !o.pureRange(sa.block, sa.last+1, sb.first) {
			o.reject("barrier", sib.Name(), fmt.Sprintf("effectful instruction between sibling barriers %d and %d", a.tag, b.tag))
			return false
		}
		if hasUses(sib.Fn, sb.waits[0]) {
			return false
		}
		recs = append(recs, sibRec{ch: sib, sendB: sb.sends[0], waitB: sb.waits[0], blk: sb.block})
	}

	// Unsafe side: drop a's acks and b's waits, retag b's acks to a.
	for _, s := range a.sends {
		blk := s.Parent()
		blk.Splice(blk.IndexOf(s))
	}
	for _, w := range b.waits {
		blk := w.Parent()
		blk.Splice(blk.IndexOf(w))
	}
	for _, s := range b.sends {
		s.Args[1] = ir.I64Const(int64(a.tag))
	}
	// Siblings: drop the b token/ack pair entirely.
	for _, r := range recs {
		r.blk.Splice(r.blk.IndexOf(r.sendB))
		r.blk.Splice(r.blk.IndexOf(r.waitB))
	}
	// Provenance: the dropped tag's effects now sit inside the kept
	// interval.
	barriers := o.pp.BarrierTags(pf)
	for in, tag := range barriers {
		if tag == b.tag {
			barriers[in] = a.tag
		}
	}
	o.res.Merged = append(o.res.Merged, MergedBarrier{Fn: pf.Spec.Key, KeptTag: a.tag, DroppedTag: b.tag, Siblings: len(recs)})
	return true
}

// barrierIntervals collects the unsafe chunk's barrier intervals in block
// order: waits, then the frozen effect, then the acks, all per tag.
func barrierIntervals(uch *partition.Chunk, barrierTags map[int]bool) []*interval {
	var out []*interval
	for _, blk := range uch.Fn.Blocks {
		byTag := map[int]*interval{}
		var order []*interval
		for i, in := range blk.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			var tag int64
			var isWait bool
			if isIntr(call, partition.IntrWait) {
				tag, ok = constArg(call, 0)
				isWait = true
			} else if isIntr(call, partition.IntrSend) {
				tag, ok = constArg(call, 1)
			} else {
				continue
			}
			if !ok || !barrierTags[int(tag)] {
				continue
			}
			iv := byTag[int(tag)]
			if iv == nil {
				iv = &interval{block: blk, tag: int(tag), first: i}
				byTag[int(tag)] = iv
				order = append(order, iv)
			}
			if isWait {
				iv.waits = append(iv.waits, call)
			} else {
				iv.sends = append(iv.sends, call)
				iv.last = i
			}
		}
		for _, iv := range order {
			if len(iv.waits) > 0 && len(iv.sends) > 0 && iv.last > iv.first {
				out = append(out, iv)
			}
		}
	}
	return out
}

// sibPair finds a sibling's token/ack pair for one barrier tag: the
// send(U, tag) and the wait(tag), as a degenerate interval.
func sibPair(sib *partition.Chunk, tag int) *interval {
	for _, blk := range sib.Fn.Blocks {
		var iv *interval
		for i, in := range blk.Instrs {
			call, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			if isIntr(call, partition.IntrSend) {
				if t, tok := constArg(call, 1); tok && int(t) == tag {
					if iv == nil {
						iv = &interval{block: blk, tag: tag, first: i}
					}
					iv.sends = append(iv.sends, call)
				}
			} else if isIntr(call, partition.IntrWait) {
				if t, tok := constArg(call, 0); tok && int(t) == tag {
					if iv == nil {
						iv = &interval{block: blk, tag: tag, first: i}
					}
					iv.waits = append(iv.waits, call)
					iv.last = i
				}
			}
		}
		if iv != nil {
			if len(iv.sends) == 1 && len(iv.waits) == 1 && iv.last > iv.first {
				return iv
			}
			return nil
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared legality helpers.

// pureRange reports whether every instruction in [from, to) of b is pure
// scalar: no memory traffic, no messages, no calls that could observe or
// advance the boundary protocol. This is the dataflow fact all three
// rewrites lean on — between the merged points, no sibling-visible state
// changes and no U def-use chain is crossed.
func (o *optimizer) pureRange(b *ir.Block, from, to int) bool {
	for i := from; i < to && i < len(b.Instrs); i++ {
		if !o.pureInstr(b.Instrs[i]) {
			return false
		}
	}
	return true
}

func (o *optimizer) pureInstr(in ir.Instr) bool {
	switch v := in.(type) {
	case *ir.BinOp, *ir.Cmp, *ir.Cast, *ir.FieldAddr, *ir.IndexAddr, *ir.Alloca:
		return true
	case *ir.Load:
		// Enclave-private loads are invisible to every other worker, so
		// reordering messages across them changes nothing anyone can
		// observe. U/Free loads stay barriers to motion: a delayed send
		// could move a consumer's U store across this read.
		pt, ok := v.Ptr.Type().(ir.PointerType)
		return ok && pt.Color.IsEnclave()
	case *ir.Call:
		fn, direct := v.Callee.(*ir.Function)
		if !direct || !fn.External || o.fnChunk[fn] != nil {
			return false
		}
		switch fn.FName {
		case partition.IntrSpawn, partition.IntrSend, partition.IntrSendV,
			partition.IntrWait, partition.IntrWaitV, partition.IntrJoin, partition.IntrElem:
			return false
		}
		// Scalar-only externals (reveal and friends): no pointers in,
		// no pointer out, so no memory the protocol could observe.
		if _, ok := v.Type().(ir.PointerType); ok {
			return false
		}
		for _, a := range v.Args {
			if _, ok := a.Type().(ir.PointerType); ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func isIntr(c *ir.Call, name string) bool {
	fn, ok := c.Callee.(*ir.Function)
	return ok && fn.FName == name
}

func hasUses(fn *ir.Function, in ir.Instr) bool {
	v, ok := in.(ir.Value)
	if !ok {
		return false
	}
	used := false
	fn.Instrs(func(_ *ir.Block, x ir.Instr) {
		if x == in {
			return
		}
		for _, op := range x.Ops() {
			if *op == v {
				used = true
			}
		}
	})
	return used
}

func zeroValue(t ir.Type) ir.Value {
	switch tt := t.(type) {
	case ir.IntType:
		return ir.NewConstInt(tt, 0)
	case ir.PointerType:
		return &ir.Null{Typ: tt}
	case ir.FloatType:
		return &ir.ConstFloat{Typ: tt, V: 0}
	default:
		return ir.I64Const(0)
	}
}

func sameColors(a, b []ir.Color) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
