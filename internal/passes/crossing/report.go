package crossing

import (
	"fmt"
	"sort"
	"strings"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/sgx"
)

// EdgeKind classifies a message-bearing boundary edge.
type EdgeKind string

// Edge kinds. Spawn/Done bracket a chunk activation; Cont is a value
// transport; Waiter is the owner's result distribution to waiter chunks;
// Barrier covers both the token and ack legs of a visible-effect barrier;
// Split is the out-of-line allocation traffic of a split struct; ContVec
// is a vectored transport emitted by the optimizer.
const (
	KindSpawn   EdgeKind = "spawn"
	KindDone    EdgeKind = "done"
	KindCont    EdgeKind = "cont"
	KindContVec EdgeKind = "contv"
	KindWaiter  EdgeKind = "waiter"
	KindBarrier EdgeKind = "barrier"
	KindSplit   EdgeKind = "split"
)

// EdgeKey identifies one static crossing edge: messages of one kind
// flowing from one chunk toward one destination under one tag.
type EdgeKey struct {
	From string // producing chunk (or "interface" for entry spawns)
	To   string // destination chunk or color
	Kind EdgeKind
	Tag  int // 0 for spawn/done/split
	// DstChunk is the spawned chunk's id for spawn/done edges (-1
	// otherwise): the hook the measured column uses to match trace
	// events.
	DstChunk int
	// Depth is the loop nesting depth of the producing site in its own
	// chunk body (0 = straight line).
	Depth int
}

// Edge is one priced crossing edge of a report.
type Edge struct {
	EdgeKey
	// PerOp is the predicted number of messages per operation (one
	// entry call divided by the entry's OpsPerCall).
	PerOp float64
	// CyclesPerOp prices PerOp against the cost model's queue hop.
	CyclesPerOp float64
}

// Report is the per-entry crossing-cost prediction.
type Report struct {
	Entry string
	// OpsPerCall normalizes one entry invocation to workload
	// operations: the trip count of the entry's outermost counted loop
	// (1 when there is none).
	OpsPerCall float64
	Edges      []Edge
	// PerChunk sums PerOp by producing chunk.
	PerChunk map[string]float64
	// TotalPerOp is the predicted crossings/op; TotalCyclesPerOp prices
	// it.
	TotalPerOp       float64
	TotalCyclesPerOp float64
	// Recursive notes that a call cycle was truncated (its repetitions
	// beyond the first are not modeled).
	Recursive bool
}

// Analyzer computes crossing reports over a partitioned program.
type Analyzer struct {
	pp    *partition.Program
	est   Estimator
	model sgx.CostModel

	fnChunk map[*ir.Function]*partition.Chunk
	tagKind map[int]EdgeKind
	memo    map[*partition.Chunk]map[EdgeKey]float64
	onStack map[*partition.Chunk]bool
	cut     bool
}

// NewAnalyzer builds an analyzer over pp with the given heuristics and
// cost model.
func NewAnalyzer(pp *partition.Program, est Estimator, model sgx.CostModel) *Analyzer {
	a := &Analyzer{
		pp:      pp,
		est:     est,
		model:   model,
		fnChunk: map[*ir.Function]*partition.Chunk{},
		tagKind: map[int]EdgeKind{},
		memo:    map[*partition.Chunk]map[EdgeKey]float64{},
		onStack: map[*partition.Chunk]bool{},
	}
	for _, ch := range pp.ChunkByID {
		a.fnChunk[ch.Fn] = ch
	}
	for _, pf := range pp.Funcs {
		for _, tr := range pp.Transports(pf) {
			a.tagKind[tr.Tag] = KindCont
		}
		for _, tag := range pp.BarrierTags(pf) {
			a.tagKind[tag] = KindBarrier
		}
	}
	for _, plan := range pp.Plans {
		if plan.Tag != 0 {
			a.tagKind[plan.Tag] = KindWaiter
		}
	}
	return a
}

// Analyze predicts the crossing cost of every entry point.
func Analyze(pp *partition.Program, est Estimator, model sgx.CostModel) map[string]*Report {
	a := NewAnalyzer(pp, est, model)
	out := map[string]*Report{}
	for name, pf := range pp.Entries {
		out[name] = a.Entry(name, pf)
	}
	return out
}

// Entry predicts the crossing cost of one entry point.
func (a *Analyzer) Entry(name string, pf *partition.PartFunc) *Report {
	a.cut = false
	acc := map[EdgeKey]float64{}
	// The interface wrapper spawns every enclave chunk of the entry and
	// runs the U chunk inline (§7.3.4); each spawn is answered by a done.
	if pf.Interface != nil {
		for _, c := range pf.Interface.Spawns {
			ch := pf.Chunks[c]
			if ch == nil {
				continue
			}
			acc[EdgeKey{From: "interface", To: ch.Name(), Kind: KindSpawn, DstChunk: ch.ID}] += 1
			acc[EdgeKey{From: ch.Name(), To: "interface", Kind: KindDone, DstChunk: ch.ID}] += 1
			a.fold(acc, ch, 1)
		}
	}
	if uch := pf.Chunks[ir.U]; uch != nil {
		a.fold(acc, uch, 1)
	}

	rep := &Report{
		Entry:      name,
		OpsPerCall: a.opsPerCall(pf),
		PerChunk:   map[string]float64{},
		Recursive:  a.cut,
	}
	for k, n := range acc {
		perOp := n / rep.OpsPerCall
		rep.Edges = append(rep.Edges, Edge{
			EdgeKey:     k,
			PerOp:       perOp,
			CyclesPerOp: perOp * float64(a.model.QueueMessage),
		})
		rep.PerChunk[k.From] += perOp
		rep.TotalPerOp += perOp
	}
	rep.TotalCyclesPerOp = rep.TotalPerOp * float64(a.model.QueueMessage)
	sort.Slice(rep.Edges, func(i, j int) bool {
		ei, ej := rep.Edges[i], rep.Edges[j]
		if ei.PerOp != ej.PerOp {
			return ei.PerOp > ej.PerOp
		}
		if ei.From != ej.From {
			return ei.From < ej.From
		}
		if ei.Kind != ej.Kind {
			return ei.Kind < ej.Kind
		}
		if ei.Tag != ej.Tag {
			return ei.Tag < ej.Tag
		}
		if ei.To != ej.To {
			return ei.To < ej.To
		}
		return ei.DstChunk < ej.DstChunk
	})
	return rep
}

// fold adds scale executions' worth of ch's message traffic (including
// everything it transitively spawns or calls) into acc.
func (a *Analyzer) fold(acc map[EdgeKey]float64, ch *partition.Chunk, scale float64) {
	for k, n := range a.chunkEdges(ch) {
		acc[k] += n * scale
	}
}

// chunkEdges computes the per-invocation crossing traffic of one chunk
// body, memoized. Call cycles are truncated at their first repetition.
func (a *Analyzer) chunkEdges(ch *partition.Chunk) map[EdgeKey]float64 {
	if m := a.memo[ch]; m != nil {
		return m
	}
	if a.onStack[ch] {
		a.cut = true
		return nil
	}
	a.onStack[ch] = true
	defer delete(a.onStack, ch)

	acc := map[EdgeKey]float64{}
	fn := ch.Fn
	fn.ComputeCFG()
	fr := EstimateFreq(fn, a.est)

	for _, b := range fn.Blocks {
		f := fr.Block[b]
		if f == 0 {
			continue
		}
		depth := fr.Loops.Depth(b)
		for _, in := range b.Instrs {
			switch v := in.(type) {
			case *ir.Call:
				a.callEdges(acc, ch, v, f, depth)
			case *ir.Malloc:
				a.splitEdges(acc, ch, v, f, depth)
			}
		}
	}
	a.memo[ch] = acc
	return acc
}

// callEdges prices one call site: intrinsics carry messages themselves;
// direct calls into other chunks fold the callee's traffic.
func (a *Analyzer) callEdges(acc map[EdgeKey]float64, ch *partition.Chunk, c *ir.Call, f float64, depth int) {
	fn, ok := c.Callee.(*ir.Function)
	if !ok {
		return
	}
	switch fn.FName {
	case partition.IntrSpawn:
		id, ok := constArg(c, 0)
		if !ok || int(id) >= len(a.pp.ChunkByID) {
			return
		}
		tc := a.pp.ChunkByID[id]
		acc[EdgeKey{From: ch.Name(), To: tc.Name(), Kind: KindSpawn, DstChunk: tc.ID, Depth: depth}] += f
		acc[EdgeKey{From: tc.Name(), To: ch.Name(), Kind: KindDone, DstChunk: tc.ID, Depth: depth}] += f
		a.fold(acc, tc, f)
	case partition.IntrSend, partition.IntrSendV:
		dstIdx, ok1 := constArg(c, 0)
		tag, ok2 := constArg(c, 1)
		if !ok1 || !ok2 {
			return
		}
		kind := a.tagKind[int(tag)]
		if kind == "" {
			kind = KindCont
		}
		if fn.FName == partition.IntrSendV {
			kind = KindContVec
		}
		dst := "U"
		if d := a.pp.ColorAt(int(dstIdx)); !d.IsUntrusted() {
			dst = d.String()
		}
		// DstChunk doubles as the destination color index for tagged
		// traffic: it is what the tracer can attribute a send to.
		acc[EdgeKey{From: ch.Name(), To: dst, Kind: kind, Tag: int(tag), DstChunk: int(dstIdx), Depth: depth}] += f
	case partition.IntrWait, partition.IntrWaitV, partition.IntrJoin, partition.IntrElem:
		// Receive side: the send is priced at the producer.
	default:
		if tc := a.fnChunk[fn]; tc != nil {
			a.fold(acc, tc, f)
		}
	}
}

// splitEdges prices the out-of-line allocations of a split-struct malloc:
// two messages per colored field per element (§7.2: the allocation request
// and the returned enclave pointer).
func (a *Analyzer) splitEdges(acc map[EdgeKey]float64, ch *partition.Chunk, m *ir.Malloc, f float64, depth int) {
	st, ok := m.Elem.(*ir.StructType)
	if !ok {
		return
	}
	split := a.pp.Splits[st.Name]
	if split == nil {
		return
	}
	elems := 1.0
	if cnt, ok := m.Count.(*ir.ConstInt); ok {
		elems = float64(cnt.V)
	}
	n := f * elems * 2 * float64(len(split.FieldColors))
	acc[EdgeKey{From: ch.Name(), To: "enclaves", Kind: KindSplit, DstChunk: -1, Depth: depth}] += n
}

// opsPerCall is the trip count of the entry's outermost counted loop: the
// workload-loop normalizer that turns per-call totals into per-op rates.
// The maximum across the entry's chunks is used (clones agree on the
// counted loop; barriers can split blocks differently).
func (a *Analyzer) opsPerCall(pf *partition.PartFunc) float64 {
	ops := 1.0
	for _, ch := range pf.Chunks {
		ch.Fn.ComputeCFG()
		li := AnalyzeLoops(ch.Fn)
		for _, l := range li.Loops {
			if l.Depth == 1 && l.KnownTrip && l.Trip > ops {
				ops = l.Trip
			}
		}
	}
	return ops
}

func constArg(c *ir.Call, i int) (int64, bool) {
	if i >= len(c.Args) {
		return 0, false
	}
	ci, ok := c.Args[i].(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return ci.V, true
}

// Table renders the report as the aligned text table privagic-explain
// prints. measured maps an edge to its tracer-measured messages/op;
// pass nil for the static-only view (golden files).
func (r *Report) Table(measured map[EdgeKey]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry %s: predicted %.3f crossings/op (%.0f cycles/op, %g ops/call)\n",
		r.Entry, r.TotalPerOp, r.TotalCyclesPerOp, r.OpsPerCall)
	if r.Recursive {
		b.WriteString("  (call cycle truncated: recursion beyond the first activation is not modeled)\n")
	}
	fmt.Fprintf(&b, "  %-28s %-22s %-8s %3s %5s %12s", "from", "to", "kind", "tag", "depth", "static/op")
	if measured != nil {
		fmt.Fprintf(&b, " %12s %8s", "measured/op", "dev")
	}
	b.WriteString("\n")
	// Several static edges can share one tracer key (two siblings acking
	// the same barrier tag to the same destination): the measured total is
	// distributed over them proportionally to their static weights, so
	// per-row deviations stay meaningful and the column still sums to the
	// traced total.
	groupStatic := map[EdgeKey]float64{}
	for _, e := range r.Edges {
		groupStatic[e.measuredKey()] += e.PerOp
	}
	for _, e := range r.Edges {
		tag := "-"
		if e.Tag != 0 {
			tag = fmt.Sprintf("%d", e.Tag)
		}
		fmt.Fprintf(&b, "  %-28s %-22s %-8s %3s %5d %12.3f", e.From, e.To, e.Kind, tag, e.Depth, e.PerOp)
		if measured != nil {
			if m, ok := measured[e.measuredKey()]; ok {
				if g := groupStatic[e.measuredKey()]; g > 0 {
					m *= e.PerOp / g
				}
				dev := "-"
				if m > 0 {
					dev = fmt.Sprintf("%+.1f%%", 100*(e.PerOp-m)/m)
				}
				fmt.Fprintf(&b, " %12.3f %8s", m, dev)
			} else {
				fmt.Fprintf(&b, " %12s %8s", "n/a", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// measuredKey collapses an edge to what the tracer can distinguish:
// tagged cont traffic by (tag, destination color); spawn/done activations
// by target chunk.
func (e *Edge) measuredKey() EdgeKey {
	switch e.Kind {
	case KindSpawn, KindDone:
		return EdgeKey{Kind: e.Kind, DstChunk: e.DstChunk}
	case KindSplit:
		return EdgeKey{Kind: KindSplit, DstChunk: -1}
	default:
		return EdgeKey{Kind: KindCont, Tag: e.Tag, DstChunk: e.DstChunk}
	}
}

// MeasuredEdges aggregates a trace-event stream into the measured-side map
// Table consumes: EvSend events with a tag are cont messages (of whatever
// kind the tag had statically), attributed by (tag, receiving color);
// untagged EvSend events are spawn/done pairs attributed to their chunk,
// split evenly (the runtime answers every spawn with exactly one done).
func MeasuredEdges(sends []TraceSend, ops float64) map[EdgeKey]float64 {
	out := map[EdgeKey]float64{}
	for _, s := range sends {
		if s.Tag > 0 {
			out[EdgeKey{Kind: KindCont, Tag: s.Tag, DstChunk: s.Dst}] += 1 / ops
		} else {
			out[EdgeKey{Kind: KindSpawn, DstChunk: s.Chunk}] += 0.5 / ops
			out[EdgeKey{Kind: KindDone, DstChunk: s.Chunk}] += 0.5 / ops
		}
	}
	return out
}

// TraceSend is the slice of a trace event the measured column needs
// (decoupled from internal/obs so the analyzer stays import-light): the
// message's chunk id (spawn/done), its cont tag, and the receiving
// worker's color index.
type TraceSend struct {
	Chunk int
	Tag   int
	Dst   int
}
