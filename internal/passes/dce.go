package passes

import "privagic/internal/ir"

// DCE removes value-producing instructions whose results are never used and
// that have no side effects. The partitioner relies on it to clean up the
// Free-colored computations it replicates into every chunk (paper §7.3.1:
// "if the F instruction is uselessly replicated, a dead-code-elimination
// pass eliminates it after"). Returns the number of instructions removed.
func DCE(f *ir.Function) int {
	if f.External {
		return 0
	}
	removed := 0
	for {
		used := map[ir.Value]bool{}
		f.Instrs(func(_ *ir.Block, in ir.Instr) {
			for _, op := range in.Ops() {
				used[*op] = true
			}
		})
		changed := false
		for _, b := range f.Blocks {
			var kept []ir.Instr
			for _, in := range b.Instrs {
				if isPure(in) {
					if v, ok := in.(ir.Value); ok && !used[v] {
						changed = true
						removed++
						continue
					}
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !changed {
			return removed
		}
	}
}

// isPure reports whether removing the instruction cannot change observable
// behaviour. Loads are pure in this IR (no volatile); calls, stores, frees
// and terminators are not. A dead malloc only leaks, so it may go too.
func isPure(in ir.Instr) bool {
	switch in.(type) {
	case *ir.BinOp, *ir.Cmp, *ir.Cast, *ir.FieldAddr, *ir.IndexAddr,
		*ir.Load, *ir.Alloca, *ir.Malloc, *ir.Phi:
		return true
	}
	return false
}

// RunAll applies mem2reg then DCE to every defined function of the module,
// the standard pre-analysis pipeline of the Privagic compiler.
func RunAll(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		Mem2Reg(f)
		DCE(f)
		f.RemoveUnreachable()
	}
}
