// Package passes implements the classic SSA transformations Privagic runs
// before and after the secure-typing analysis: mem2reg (paper §5.1) and
// dead-code elimination (paper §7.3.1).
package passes

import (
	"privagic/internal/ir"
)

// Mem2Reg promotes local variables to SSA registers, inserting φ-nodes at
// iterated dominance frontiers. Exactly as in the paper (§5.1), a local is
// promoted only when the code never creates a pointer to it — its address
// is used exclusively as the direct operand of loads and stores — and when
// it carries no explicit color (a colored local is a real enclave memory
// location and must stay addressable). Such promoted variables can only be
// touched by a single thread, so the colors later inferred for the
// registers are correct even in multi-threaded programs.
//
// It returns the number of allocas promoted.
func Mem2Reg(f *ir.Function) int {
	if f.External || len(f.Blocks) == 0 {
		return 0
	}
	f.ComputeCFG()

	promotable := findPromotable(f)
	if len(promotable) == 0 {
		return 0
	}
	dom := ir.Dominators(f)

	// Phi placement at iterated dominance frontiers of the store blocks.
	phiFor := map[*ir.Phi]*ir.Alloca{}
	phisInBlock := map[*ir.Block][]*ir.Phi{}
	for _, a := range promotable {
		defBlocks := map[*ir.Block]bool{}
		f.Instrs(func(b *ir.Block, in ir.Instr) {
			if st, ok := in.(*ir.Store); ok && st.Ptr == ir.Value(a) {
				defBlocks[b] = true
			}
		})
		placed := map[*ir.Block]bool{}
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, df := range dom.Frontier(b) {
				if placed[df] {
					continue
				}
				placed[df] = true
				phi := ir.NewPhi(f, a.Elem)
				phiFor[phi] = a
				phisInBlock[df] = append(phisInBlock[df], phi)
				if !defBlocks[df] {
					defBlocks[df] = true
					work = append(work, df)
				}
			}
		}
	}

	// Renaming pass: walk the dominator tree carrying the current value
	// of each promoted variable.
	replace := map[ir.Value]ir.Value{} // dead load -> reaching value
	isPromoted := map[*ir.Alloca]bool{}
	for _, a := range promotable {
		isPromoted[a] = true
	}

	var walk func(b *ir.Block, cur map[*ir.Alloca]ir.Value)
	walk = func(b *ir.Block, cur map[*ir.Alloca]ir.Value) {
		cur = copyMap(cur)
		for _, phi := range phisInBlock[b] {
			cur[phiFor[phi]] = phi
		}
		var kept []ir.Instr
		for _, in := range b.Instrs {
			switch t := in.(type) {
			case *ir.Alloca:
				if isPromoted[t] {
					continue // drop
				}
			case *ir.Store:
				if a, ok := t.Ptr.(*ir.Alloca); ok && isPromoted[a] {
					cur[a] = t.Val
					continue // drop
				}
			case *ir.Load:
				if a, ok := t.Ptr.(*ir.Alloca); ok && isPromoted[a] {
					v := cur[a]
					if v == nil {
						v = zeroValue(a.Elem)
					}
					replace[t] = v
					continue // drop
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
		// Fill φ edges of successors.
		for _, s := range b.Succs() {
			for _, phi := range phisInBlock[s] {
				v := cur[phiFor[phi]]
				if v == nil {
					v = zeroValue(phiFor[phi].Elem)
				}
				phi.Edges = append(phi.Edges, ir.PhiEdge{Pred: b, Val: v})
			}
		}
		for _, c := range dom.Children(b) {
			walk(c, cur)
		}
	}
	walk(f.Blocks[0], map[*ir.Alloca]ir.Value{})

	// Install the φ-nodes at block heads.
	for b, phis := range phisInBlock {
		b.PrependPhis(phis)
	}

	// Resolve replacement chains (a load replaced by another dead load).
	resolve := func(v ir.Value) ir.Value {
		for {
			nv, ok := replace[v]
			if !ok {
				return v
			}
			v = nv
		}
	}
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		for _, op := range in.Ops() {
			*op = resolve(*op)
		}
	})
	f.ComputeCFG()
	return len(promotable)
}

// findPromotable returns allocas whose address never escapes: used only as
// the pointer operand of loads and stores, and carrying no explicit color.
func findPromotable(f *ir.Function) []*ir.Alloca {
	escaped := map[*ir.Alloca]bool{}
	var all []*ir.Alloca
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		if a, ok := in.(*ir.Alloca); ok {
			all = append(all, a)
			if !a.Color.IsNone() {
				escaped[a] = true
			}
			// Aggregates stay in memory: loads of whole structs or
			// arrays are not representable as scalar registers.
			switch a.Elem.(type) {
			case *ir.StructType, ir.ArrayType:
				escaped[a] = true
			}
		}
	})
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		for i, op := range in.Ops() {
			a, ok := (*op).(*ir.Alloca)
			if !ok {
				continue
			}
			switch t := in.(type) {
			case *ir.Load:
				// ptr operand: fine.
			case *ir.Store:
				// Only fine as the pointer (operand 1), not the value.
				if i == 0 && t.Val == ir.Value(a) {
					escaped[a] = true
				}
			default:
				escaped[a] = true
			}
		}
	})
	var out []*ir.Alloca
	for _, a := range all {
		if !escaped[a] {
			out = append(out, a)
		}
	}
	return out
}

func copyMap(m map[*ir.Alloca]ir.Value) map[*ir.Alloca]ir.Value {
	out := make(map[*ir.Alloca]ir.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func zeroValue(t ir.Type) ir.Value {
	switch tt := t.(type) {
	case ir.IntType:
		return ir.NewConstInt(tt, 0)
	case ir.FloatType:
		return &ir.ConstFloat{Typ: tt, V: 0}
	case ir.PointerType:
		return &ir.Null{Typ: tt}
	case ir.FuncType:
		return &ir.Null{Typ: ir.PtrTo(ir.I8)}
	default:
		return ir.I64Const(0)
	}
}
