package passes

import (
	"testing"

	"privagic/internal/ir"
	"privagic/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := minic.Compile("test.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod
}

func countAllocas(f *ir.Function) int {
	n := 0
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		if _, ok := in.(*ir.Alloca); ok {
			n++
		}
	})
	return n
}

func countPhis(f *ir.Function) int {
	n := 0
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		if _, ok := in.(*ir.Phi); ok {
			n++
		}
	})
	return n
}

func TestMem2RegPromotesSimpleLocals(t *testing.T) {
	mod := compile(t, `
int f(int a) {
	int x;
	x = a + 42;
	return x;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	if got := countAllocas(f); got != 0 {
		t.Errorf("allocas after mem2reg = %d, want 0\n%s", got, f.String2())
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestMem2RegInsertsPhiAtJoin(t *testing.T) {
	mod := compile(t, `
int f(int a) {
	int x = 0;
	if (a > 0) x = 1; else x = 2;
	return x;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	if got := countAllocas(f); got != 0 {
		t.Errorf("allocas = %d, want 0", got)
	}
	if got := countPhis(f); got == 0 {
		t.Errorf("no φ inserted at join\n%s", f.String2())
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestMem2RegLoopPhi(t *testing.T) {
	mod := compile(t, `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}`)
	f := mod.Func("sum")
	Mem2Reg(f)
	if got := countAllocas(f); got != 0 {
		t.Errorf("allocas = %d, want 0\n%s", got, f.String2())
	}
	if got := countPhis(f); got < 2 {
		t.Errorf("phis = %d, want >= 2 (s and i at loop head)\n%s", got, f.String2())
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestMem2RegKeepsAddressTaken(t *testing.T) {
	mod := compile(t, `
void g(int* p);
int f() {
	int x = 1;
	int y = 2;
	g(&x);
	return x + y;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	// x's address escapes into g: it must stay in memory. y promotes.
	if got := countAllocas(f); got != 1 {
		t.Errorf("allocas = %d, want 1 (only &x survives)\n%s", got, f.String2())
	}
}

func TestMem2RegKeepsColoredLocals(t *testing.T) {
	mod := compile(t, `
int f(int a) {
	int color(blue) x;
	x = a;
	return x;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	if got := countAllocas(f); got != 1 {
		t.Errorf("allocas = %d, want 1 (colored local is real enclave memory)", got)
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	mod := compile(t, `
int f(int a) {
	int dead = a * 1000;
	return a;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	n := DCE(f)
	if n == 0 {
		t.Errorf("DCE removed nothing\n%s", f.String2())
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestDCEKeepsCalls(t *testing.T) {
	mod := compile(t, `
int g(int a) { return a; }
int f(int a) {
	g(a);
	return a;
}`)
	f := mod.Func("f")
	Mem2Reg(f)
	DCE(f)
	calls := 0
	f.Instrs(func(_ *ir.Block, in ir.Instr) {
		if _, ok := in.(*ir.Call); ok {
			calls++
		}
	})
	if calls != 1 {
		t.Errorf("calls after DCE = %d, want 1 (calls may have effects)", calls)
	}
}
