package prt

import "fmt"

// Payload integrity tags (the third leg of the runtime Iago defense, next
// to copy-in snapshots and pointer sanitization in internal/interp).
//
// The auth stamp already proves a message *struct* was produced by the
// trusted runtime, and the stream sequence pins its position — but both
// live in the same U-memory queue node as the payload, and the §4
// attacker can rewrite the payload words in place after enqueue without
// touching either. payloadSum closes that window: a checksum over the
// message's kind, routing fields and payload values, computed inside the
// sender's enclave after the routing metadata is final and re-verified
// inside the receiver's enclave at the admit gate. It stands in for the
// MAC a production runtime would compute over the serialized message
// body; like the auth stamp, its unexported field means code outside the
// package cannot re-tag a mutated message.

// FNV-1a constants (64-bit).
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func sumU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func sumStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// PayloadSummer lets a payload type contribute its exact value words to
// the checksum without this package knowing its layout. The interpreter's
// value type implements it; everything else falls through to sumAny's
// typed switch or its formatted fallback.
type PayloadSummer interface {
	PaySum() uint64
}

// sumAny folds one payload value into the checksum.
func sumAny(h uint64, v any) uint64 {
	switch x := v.(type) {
	case nil:
		return sumU64(h, 0x9e3779b97f4a7c15)
	case PayloadSummer:
		return sumU64(h, x.PaySum())
	case int:
		return sumU64(h, uint64(x))
	case int64:
		return sumU64(h, uint64(x))
	case uint64:
		return sumU64(h, x)
	case bool:
		if x {
			return sumU64(h, 1)
		}
		return sumU64(h, 2)
	case string:
		return sumStr(h, x)
	case []byte:
		for _, b := range x {
			h ^= uint64(b)
			h *= fnvPrime
		}
		return h
	case []any:
		h = sumU64(h, uint64(len(x)))
		for _, e := range x {
			h = sumAny(h, e)
		}
		return h
	default:
		// Last resort: a stable textual rendering. Costs an allocation,
		// but only for payload types the fast paths do not know.
		return sumStr(h, fmt.Sprintf("%T:%v", v, v))
	}
}

// payloadSum computes the integrity tag of a message: everything the
// receiver acts on, except ReplyTo (a host pointer, re-validated by the
// join protocol itself) and the tag field holding the sum.
func payloadSum(m *Message) uint64 {
	h := fnvOffset
	h = sumU64(h, uint64(m.Kind))
	h = sumU64(h, uint64(m.ChunkID))
	h = sumU64(h, uint64(m.Tag))
	h = sumU64(h, uint64(m.From))
	if m.NeedReply {
		h = sumU64(h, 1)
	}
	h = sumU64(h, m.epoch)
	h = sumU64(h, m.strSeq)
	if m.Err != nil {
		h = sumStr(h, m.Err.Error())
	}
	h = sumAny(h, m.Payload)
	h = sumU64(h, uint64(len(m.Args)))
	for _, a := range m.Args {
		h = sumAny(h, a)
	}
	return h
}
