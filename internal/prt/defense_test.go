package prt

import (
	"errors"
	"testing"
	"time"

	"privagic/internal/sgx"
)

// mutateCont simulates the §4 attacker rewriting a queued message in
// place: the payload word changes between enqueue and dequeue while the
// auth stamp, epoch and stream sequence — everything the plain admit gate
// checks — stay intact (EnqueueRaw preserves the unexported metadata).
type mutateCont struct{ tag int }

func (m mutateCont) Deliver(to *Worker, msg Message) {
	if msg.Kind == MsgCont && msg.Tag == m.tag {
		if p, ok := msg.Payload.(int64); ok {
			msg.Payload = p ^ 0x5a5a
		}
	}
	to.EnqueueRaw(msg)
}

// TestPayloadTagRejectsMutatedCont checks the dequeue half of payload
// integrity: a cont whose payload was rewritten in the queue is rejected
// at the admit gate (counted as tampered), the waiter degrades to a typed
// timeout instead of consuming the corrupted value, and the rest of the
// stream — the untouched completion behind it — still flows.
func TestPayloadTagRejectsMutatedCont(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			w.SendCont(0, 4, int64(1234))
			return "done"
		},
	})
	rt.PayloadTags = true
	rt.Supervise = Supervision{WaitTimeout: 50 * time.Millisecond}
	rt.SetInterceptor(mutateCont{tag: 4})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if _, err := u.Wait(4); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait on mutated cont = %v, want ErrWaitTimeout", err)
	}
	// The rejected message consumed its stream position, so the clean
	// completion behind it is still admitted.
	if got, err := u.Join(1); err != nil || got != "done" {
		t.Fatalf("Join after rejected cont = %v, %v", got, err)
	}
	if st := rt.SupervisionStats(); st.PayloadTampered != 1 {
		t.Errorf("PayloadTampered = %d, want 1", st.PayloadTampered)
	}
}

// TestPayloadTagsCleanPassthrough is the zero-fault control: with tags
// armed and nothing mutating, the full spawn/cont/join protocol is
// unchanged and nothing is counted as tampered.
func TestPayloadTagsCleanPassthrough(t *testing.T) {
	rt := New(sgx.MachineB(), []string{"blue"}, func(w *Worker, chunkID int, args []any) any {
		w.SendCont(0, 3, args[0].(int)*2)
		return args[0].(int) + 1
	})
	rt.PayloadTags = true
	rt.Supervise = Supervision{WaitTimeout: time.Second}
	th := rt.NewThread()
	defer func() { th.Close(); rt.Shutdown() }()
	u := th.Normal()
	for j := 0; j < 100; j++ {
		u.Spawn(1, 1, []any{j}, true)
		if got, err := u.Wait(3); err != nil || got != j*2 {
			t.Fatalf("round %d: Wait = %v, %v", j, got, err)
		}
		if got, err := u.Join(1); err != nil || got != j+1 {
			t.Fatalf("round %d: Join = %v, %v", j, got, err)
		}
	}
	if st := rt.SupervisionStats(); st.PayloadTampered != 0 {
		t.Errorf("clean run counted %d tampered payloads", st.PayloadTampered)
	}
}

// TestPayloadSumSensitivity pins down what the tag covers: every field an
// in-place mutation could profitably touch — kind, routing, payload word,
// each argument, and the stream metadata a replay would have to reuse —
// changes the sum, while an identical copy reproduces it.
func TestPayloadSumSensitivity(t *testing.T) {
	base := Message{
		Kind: MsgCont, ChunkID: 3, Tag: 4, From: 1, NeedReply: true,
		Payload: int64(7), Args: []any{int64(1), "s"},
		epoch: 5, strSeq: 9,
	}
	sum := payloadSum(&base)
	cp := base
	cp.Args = []any{int64(1), "s"} // equal contents, distinct backing
	if payloadSum(&cp) != sum {
		t.Fatal("identical message produced a different sum")
	}
	mutate := map[string]func(m *Message){
		"kind":    func(m *Message) { m.Kind = MsgDone },
		"chunk":   func(m *Message) { m.ChunkID = 8 },
		"tag":     func(m *Message) { m.Tag = 5 },
		"from":    func(m *Message) { m.From = 2 },
		"reply":   func(m *Message) { m.NeedReply = false },
		"payload": func(m *Message) { m.Payload = int64(8) },
		"arg0":    func(m *Message) { m.Args[0] = int64(2) },
		"arg1":    func(m *Message) { m.Args[1] = "t" },
		"argN":    func(m *Message) { m.Args = append(m.Args, int64(0)) },
		"epoch":   func(m *Message) { m.epoch = 6 },
		"strSeq":  func(m *Message) { m.strSeq = 10 },
	}
	for name, f := range mutate {
		m := base
		m.Args = append([]any(nil), base.Args...)
		f(&m)
		if payloadSum(&m) == sum {
			t.Errorf("mutating %s did not change the payload sum", name)
		}
	}
}
