package prt

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Wait/Join/JoinOne when the worker receives the
// shutdown message mid-protocol (Thread.Close during in-flight work). It
// replaces the former panic so tearing a thread down is always safe.
var ErrStopped = errors.New("prt: runtime stopped")

// ErrWaitTimeout is the sentinel matched (errors.Is) by every supervision
// timeout; the concrete error is a *TimeoutError carrying the blocked
// operation.
var ErrWaitTimeout = errors.New("prt: wait timed out")

// ErrEnclaveAbort is the sentinel matched (errors.Is) by *EnclaveAbort.
var ErrEnclaveAbort = errors.New("prt: enclave aborted")

// TimeoutError reports which wait point gave up: the simulated analogue of
// a lost message on the untrusted queue that no retransmit recovered. It
// carries the diagnostics the watchdog computes anyway — which cont tags
// the thread's workers were still blocked on and how deep each worker's
// queue was at expiry — so a timeout names the stuck protocol state, not
// just the symptom.
type TimeoutError struct {
	Op      string // "wait", "join", "join-one"
	Worker  int    // color index of the blocked worker
	Tag     int    // cont tag (Op == "wait")
	Pending int    // completions still missing (Op == "join")
	Elapsed time.Duration

	// PendingTags is the sorted set of cont tags still unresolved across
	// the thread at expiry: the blocked worker's own tag plus every tag a
	// sibling worker had published as its blocked wait point.
	PendingTags []int
	// QueueDepths is the per-worker queue depth (index = color index) at
	// expiry: a non-empty queue under a timeout means the worker died or
	// wedged with work still pending; all-empty means the message is
	// genuinely lost.
	QueueDepths []int64

	// flight is the tracer's last-N-events dump captured at expiry
	// (empty with no tracer armed); see FlightRecord.
	flight string
}

func (e *TimeoutError) Error() string {
	var head string
	switch e.Op {
	case "wait":
		head = fmt.Sprintf("prt: w%d wait(tag=%d) timed out after %v", e.Worker, e.Tag, e.Elapsed)
	case "join":
		head = fmt.Sprintf("prt: w%d join timed out after %v with %d completion(s) missing", e.Worker, e.Elapsed, e.Pending)
	default:
		head = fmt.Sprintf("prt: w%d %s timed out after %v", e.Worker, e.Op, e.Elapsed)
	}
	if len(e.PendingTags) > 0 {
		head += fmt.Sprintf(" (pending tags %v)", e.PendingTags)
	}
	if len(e.QueueDepths) > 0 {
		head += fmt.Sprintf(" (queue depths %v)", e.QueueDepths)
	}
	return head
}

// Is lets errors.Is(err, ErrWaitTimeout) match any supervision timeout.
func (e *TimeoutError) Is(target error) bool { return target == ErrWaitTimeout }

// FlightRecord returns the tracer's flight-recorder dump captured when
// the timeout fired — the last events the runtime recorded before going
// quiet (empty when no tracer was armed). Like EnclaveAbort stacks, it is
// deliberately not part of Error(): flight records are for the operator
// inspecting a failure, not for the one-line log.
func (e *TimeoutError) FlightRecord() string { return e.flight }

// EnclaveAbort is the poisoned completion a crashing chunk leaves behind:
// the simulated analogue of an AEX that kills the enclave thread. Instead
// of deadlocking the joiner, runSpawn converts the panic into a MsgDone
// carrying this error.
type EnclaveAbort struct {
	Worker  int // color index of the worker the chunk crashed on
	ChunkID int
	Cause   error

	// stack is the goroutine stack captured by debug.Stack() at recover
	// time — the only record of where inside the chunk the crash
	// happened, since the panic unwinds before the abort is constructed.
	stack []byte

	// flight is the tracer's last-N-events dump at recover time, ending
	// with this abort's own event; see FlightRecord.
	flight string
}

func (e *EnclaveAbort) Error() string {
	return fmt.Sprintf("prt: chunk %d aborted on enclave worker w%d: %v", e.ChunkID, e.Worker, e.Cause)
}

// Unwrap exposes the crash cause.
func (e *EnclaveAbort) Unwrap() error { return e.Cause }

// Is lets errors.Is(err, ErrEnclaveAbort) match any abort.
func (e *EnclaveAbort) Is(target error) bool { return target == ErrEnclaveAbort }

// Stack returns the goroutine stack captured when the chunk's panic was
// recovered (nil for aborts constructed without one). It is not part of
// Error() — stacks are for the operator inspecting a failure, not for the
// one-line log.
func (e *EnclaveAbort) Stack() []byte { return e.stack }

// FlightRecord returns the tracer's flight-recorder dump captured when
// the chunk's panic was recovered; its last line is this abort's own
// trace event. Empty when no tracer was armed.
func (e *EnclaveAbort) FlightRecord() string { return e.flight }

// ErrIagoViolation is the sentinel matched (errors.Is) by every runtime
// boundary-defense detection: a pointer from unsafe memory that failed
// sanitization, or a message whose payload words were mutated in place
// between enqueue and dequeue. The §4 attacker owns all of U memory; this
// error is the hardened runtime refusing to act on what it found there.
var ErrIagoViolation = errors.New("prt: iago violation")

// IagoViolation is the concrete detection record. Kind is "pointer" for a
// sanitization failure (the offending address, its region and that
// region's mapped extent are filled in) or "payload" for an integrity-tag
// mismatch at the admit gate.
type IagoViolation struct {
	Kind   string // "pointer" | "payload"
	Worker int    // color index of the detecting worker (-1 if unknown)
	Addr   uint64 // offending simulated address (Kind == "pointer")
	Region int    // region the address names
	Extent uint64 // mapped extent of that region at detection time
	Len    int    // access width in bytes
}

func (e *IagoViolation) Error() string {
	switch e.Kind {
	case "pointer":
		return fmt.Sprintf("prt: iago violation: w%d rejected %d-byte access at %#x (region %d extent %#x)",
			e.Worker, e.Len, e.Addr, e.Region, e.Extent)
	case "payload":
		return fmt.Sprintf("prt: iago violation: w%d rejected message with mutated payload", e.Worker)
	default:
		return fmt.Sprintf("prt: iago violation (%s) on w%d", e.Kind, e.Worker)
	}
}

// Is lets errors.Is(err, ErrIagoViolation) match any boundary detection.
func (e *IagoViolation) Is(target error) bool { return target == ErrIagoViolation }
