package prt

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Wait/Join/JoinOne when the worker receives the
// shutdown message mid-protocol (Thread.Close during in-flight work). It
// replaces the former panic so tearing a thread down is always safe.
var ErrStopped = errors.New("prt: runtime stopped")

// ErrWaitTimeout is the sentinel matched (errors.Is) by every supervision
// timeout; the concrete error is a *TimeoutError carrying the blocked
// operation.
var ErrWaitTimeout = errors.New("prt: wait timed out")

// ErrEnclaveAbort is the sentinel matched (errors.Is) by *EnclaveAbort.
var ErrEnclaveAbort = errors.New("prt: enclave aborted")

// TimeoutError reports which wait point gave up: the simulated analogue of
// a lost message on the untrusted queue that no retransmit recovered.
type TimeoutError struct {
	Op      string // "wait", "join", "join-one"
	Worker  int    // color index of the blocked worker
	Tag     int    // cont tag (Op == "wait")
	Pending int    // completions still missing (Op == "join")
	Elapsed time.Duration
}

func (e *TimeoutError) Error() string {
	switch e.Op {
	case "wait":
		return fmt.Sprintf("prt: w%d wait(tag=%d) timed out after %v", e.Worker, e.Tag, e.Elapsed)
	case "join":
		return fmt.Sprintf("prt: w%d join timed out after %v with %d completion(s) missing", e.Worker, e.Elapsed, e.Pending)
	default:
		return fmt.Sprintf("prt: w%d %s timed out after %v", e.Worker, e.Op, e.Elapsed)
	}
}

// Is lets errors.Is(err, ErrWaitTimeout) match any supervision timeout.
func (e *TimeoutError) Is(target error) bool { return target == ErrWaitTimeout }

// EnclaveAbort is the poisoned completion a crashing chunk leaves behind:
// the simulated analogue of an AEX that kills the enclave thread. Instead
// of deadlocking the joiner, runSpawn converts the panic into a MsgDone
// carrying this error.
type EnclaveAbort struct {
	Worker  int // color index of the worker the chunk crashed on
	ChunkID int
	Cause   error
}

func (e *EnclaveAbort) Error() string {
	return fmt.Sprintf("prt: chunk %d aborted on enclave worker w%d: %v", e.ChunkID, e.Worker, e.Cause)
}

// Unwrap exposes the crash cause.
func (e *EnclaveAbort) Unwrap() error { return e.Cause }

// Is lets errors.Is(err, ErrEnclaveAbort) match any abort.
func (e *EnclaveAbort) Is(target error) bool { return target == ErrEnclaveAbort }
