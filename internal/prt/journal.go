package prt

import (
	"sync"
	"sync/atomic"

	"privagic/internal/obs"
)

// The journal is the transactional half of recovery: every spawn is
// recorded with its argument vector before it leaves the sender,
// and stays in-flight until its completion commits. A poisoned completion
// replays the spawn from the journaled arguments; because the executing
// side buffers its visible effects until the completion is sent (the
// interpreter's effect transaction) and the journal additionally caches
// the chunk's cont traffic, a replay is idempotent:
//
//   - writes of the crashed attempt were never applied (discarded with
//     the effect transaction), so the replay starts from pristine state;
//   - conts and completions the crashed attempt had already consumed are
//     re-served from the journal's cache (the peer will not send them
//     again);
//   - conts and nested spawns the crashed attempt had already sent are
//     suppressed on replay (the peer consumed them; a fresh copy would
//     be matched against a *later* wait point, or execute a nested chunk
//     a second time, and corrupt the protocol);
//   - loads the crashed attempt performed are re-served from the cache
//     (committed effects of nested chunks may have moved shared memory
//     past the point the attempt observed, and a live re-read would
//     steer the replay down a branch its peers never reacted to).
//
// Deterministic chunk bodies (same args, same cached inputs) make the
// cached/suppressed values exact, which is what the paper's §5 execution
// model guarantees: a chunk is a pure function of its arguments and its
// barrier inputs, plus writes that are buffered here.
type journal struct {
	mu       sync.Mutex
	inflight map[spawnKey]*spawnRec

	journaled atomic.Int64 // spawns recorded
	commits   atomic.Int64 // completions that closed an entry
	replays   atomic.Int64 // re-executions performed
	giveups   atomic.Int64 // spawns that exhausted the attempt budget
}

// spawnKey identifies one in-flight spawn. A thread's protocol is
// sequential per chunk (a new spawn of the same chunk only happens after
// the previous one's completion was consumed), so (thread, target worker,
// chunk) is unique among in-flight spawns.
type spawnKey struct {
	t     *Thread
	toIdx int
	chunk int
}

// spawnRec is the redo-log entry of one spawn: everything needed to
// replay it, plus the cont replay caches. Fields are guarded by mu — the
// executing worker (cont caching) and the joiner (retry bookkeeping) can
// race when a restart replays while a stale attempt still runs.
type spawnRec struct {
	mu        sync.Mutex
	toIdx     int
	chunkID   int
	args      []any
	replyTo   *Worker
	needReply bool
	attempts  int // replays performed so far

	// contsIn caches conts consumed by the executing chunk in consumption
	// order; inCursor is the current attempt's position in it. sentOut is
	// how many conts earlier attempts delivered; outCursor counts the
	// current attempt's sends (the first sentOut of them are suppressed).
	contsIn   []Message
	inCursor  int
	sentOut   int
	outCursor int

	// The same discipline for the chunk's own nested protocol: donesIn
	// caches completions the chunk consumed (a replay re-joins them from
	// the cache — the nested chunk will not complete again), and
	// spawnsSent/spawnCursor suppress re-issuing nested spawns a previous
	// attempt already sent (a fresh copy would execute the nested chunk a
	// second time).
	donesIn      []Message
	doneInCursor int
	spawnsSent   int
	spawnCursor  int

	// loadBuf/loadLens cache every mode-checked load the executing chunk
	// performs (in program order, bytes concatenated arena-style so the
	// fault-free path never allocates per load), and loadCursor/loadOff
	// are the current attempt's position. A replay is served from this
	// cache instead of re-reading memory: between the crashed attempt and
	// the replay, *committed* effects of nested chunks may have changed
	// shared memory, and a live re-read would steer the replay down a
	// different branch than the attempt the protocol's peers already
	// reacted to. With loads, conts and completions all replayed from the
	// log, a chunk body is a pure function of its journal entry.
	loadBuf    []byte
	loadLens   []int32
	loadCursor int
	loadOff    int

	// allocsIn caches the results of allocation service calls (§7.2): the
	// allocator's bump cursor is runtime state outside the effect
	// transaction, so a replay must reuse the addresses the crashed
	// attempt obtained — its peers may already have committed writes
	// through pointers derived from them.
	allocsIn    []uint64
	allocCursor int
}

// beginAttempt rewinds the replay cursors for a (re-)execution.
func (r *spawnRec) beginAttempt() {
	r.mu.Lock()
	r.inCursor = 0
	r.outCursor = 0
	r.doneInCursor = 0
	r.spawnCursor = 0
	r.loadCursor = 0
	r.loadOff = 0
	r.allocCursor = 0
	r.mu.Unlock()
}

// cachedCont serves the next cont of the replay cache if it matches tag.
// A mismatch falls through to a live wait (the attempt diverged from the
// cached order; with deterministic chunks this only happens when the
// cache is exhausted).
func (r *spawnRec) cachedCont(tag int) (Message, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inCursor < len(r.contsIn) && r.contsIn[r.inCursor].Tag == tag {
		msg := r.contsIn[r.inCursor]
		r.inCursor++
		return msg, true
	}
	return Message{}, false
}

// recordContIn appends a live-consumed cont to the cache.
func (r *spawnRec) recordContIn(msg Message) {
	r.mu.Lock()
	if r.inCursor == len(r.contsIn) {
		r.contsIn = append(r.contsIn, msg)
		r.inCursor++
	}
	r.mu.Unlock()
}

// suppressSend reports whether the current attempt's next cont send was
// already delivered by a previous attempt.
func (r *spawnRec) suppressSend() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outCursor++
	if r.outCursor <= r.sentOut {
		return true
	}
	r.sentOut = r.outCursor
	return false
}

// suppressSpawn reports whether the current attempt's next nested spawn
// was already issued by a previous attempt.
func (r *spawnRec) suppressSpawn() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spawnCursor++
	if r.spawnCursor <= r.spawnsSent {
		return true
	}
	r.spawnsSent = r.spawnCursor
	return false
}

// cachedDone serves the next completion of the replay cache, if any.
// Completions are order-based (joins carry no tag): a deterministic chunk
// re-joins in the order it first consumed.
func (r *spawnRec) cachedDone() (Message, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.doneInCursor < len(r.donesIn) {
		msg := r.donesIn[r.doneInCursor]
		r.doneInCursor++
		return msg, true
	}
	return Message{}, false
}

// journalLoad threads one mode-checked load through the replay cache:
// a position with a cached value overwrites buf with the bytes the
// earlier attempt read; a position past the cache records buf. Purely
// positional — a deterministic chunk issues the same load sequence.
func (r *spawnRec) journalLoad(buf []byte) {
	r.mu.Lock()
	if r.loadCursor < len(r.loadLens) {
		n := int(r.loadLens[r.loadCursor])
		copy(buf, r.loadBuf[r.loadOff:r.loadOff+n])
		r.loadCursor++
		r.loadOff += n
		r.mu.Unlock()
		return
	}
	r.loadBuf = append(r.loadBuf, buf...)
	r.loadLens = append(r.loadLens, int32(len(buf)))
	r.loadCursor++
	r.loadOff += len(buf)
	r.mu.Unlock()
}

// journalAlloc serves the next allocation from the replay cache, or runs
// alloc live and records its result. On a cache hit alloc is not called:
// the addresses (and the side allocations behind them) already exist from
// the attempt the cache recorded.
func (r *spawnRec) journalAlloc(alloc func() uint64) uint64 {
	r.mu.Lock()
	if r.allocCursor < len(r.allocsIn) {
		ptr := r.allocsIn[r.allocCursor]
		r.allocCursor++
		r.mu.Unlock()
		return ptr
	}
	r.mu.Unlock()
	ptr := alloc()
	r.mu.Lock()
	r.allocsIn = append(r.allocsIn, ptr)
	r.allocCursor++
	r.mu.Unlock()
	return ptr
}

// recordDoneIn appends a live-consumed completion to the cache.
func (r *spawnRec) recordDoneIn(msg Message) {
	r.mu.Lock()
	if r.doneInCursor == len(r.donesIn) {
		r.donesIn = append(r.donesIn, msg)
		r.doneInCursor++
	}
	r.mu.Unlock()
}

// recordSpawn journals a spawn before it is sent. Recovery must be
// enabled by the caller.
func (rt *Runtime) recordSpawn(t *Thread, toIdx, chunkID int, args []any, replyTo *Worker, needReply bool) {
	j := &rt.jr
	j.mu.Lock()
	if j.inflight == nil {
		j.inflight = make(map[spawnKey]*spawnRec, 8)
	}
	key := spawnKey{t, toIdx, chunkID}
	if _, exists := j.inflight[key]; !exists {
		j.inflight[key] = &spawnRec{toIdx: toIdx, chunkID: chunkID, args: args, replyTo: replyTo, needReply: needReply}
		j.journaled.Add(1)
	}
	j.mu.Unlock()
}

// lookupSpawn finds the in-flight entry for a spawn executing on worker
// toIdx of thread t (nil when recovery is off or the spawn predates it).
func (rt *Runtime) lookupSpawn(t *Thread, toIdx, chunkID int) *spawnRec {
	j := &rt.jr
	j.mu.Lock()
	rec := j.inflight[spawnKey{t, toIdx, chunkID}]
	j.mu.Unlock()
	return rec
}

// completeSpawn commits the journal entry of a consumed successful
// completion. Unknown completions (recovery off, forged) are ignored.
func (rt *Runtime) completeSpawn(t *Thread, fromIdx, chunkID int) {
	j := &rt.jr
	j.mu.Lock()
	key := spawnKey{t, fromIdx, chunkID}
	if _, ok := j.inflight[key]; ok {
		delete(j.inflight, key)
		j.commits.Add(1)
	}
	j.mu.Unlock()
}

// retrySpawn decides the fate of a poisoned completion consumed by w:
// true means the spawn was replayed (the completion is swallowed and the
// joiner keeps waiting for the replacement), false means the budget is
// exhausted (or the spawn was never journaled) and the error surfaces.
// Runs on the joiner's goroutine; the backoff sleep happens here, where
// the caller is blocked anyway.
func (rt *Runtime) retrySpawn(w *Worker, abort *EnclaveAbort) bool {
	if !rt.Recovery.Enabled() {
		return false
	}
	t := w.Thread
	rec := rt.lookupSpawn(t, abort.Worker, abort.ChunkID)
	if rec == nil {
		return false
	}
	rec.mu.Lock()
	rec.attempts++
	attempt := rec.attempts
	rec.mu.Unlock()
	if attempt > rt.Recovery.MaxAttempts {
		j := &rt.jr
		j.mu.Lock()
		delete(j.inflight, spawnKey{t, abort.Worker, abort.ChunkID})
		j.mu.Unlock()
		j.giveups.Add(1)
		rt.trace(obs.EvGiveUp, abort.Worker, abort.ChunkID, 0, t.epoch.Load(), int64(attempt-1))
		return false
	}
	// Context-aware backoff: a Close during the wait cuts it short and
	// surfaces the abort instead of replaying into a dead thread. The
	// replay is counted only after the sleep commits to it.
	if err := rt.Recovery.Sleep(t.ctx, attempt); err != nil {
		return false
	}
	rt.jr.replays.Add(1)
	rt.respawn(t, rec)
	return true
}

// respawn re-sends a journaled spawn to the current worker of its color
// (after a restart, that is the replacement worker) in the thread's
// current epoch.
func (rt *Runtime) respawn(t *Thread, rec *spawnRec) {
	target := t.Worker(rec.toIdx)
	rec.mu.Lock()
	attempt := rec.attempts
	rec.mu.Unlock()
	rt.trace(obs.EvReplaySpawn, rec.toIdx, rec.chunkID, 0, t.epoch.Load(), int64(attempt))
	rt.send(rec.replyTo, target, Message{
		Kind: MsgSpawn, ChunkID: rec.chunkID, Args: rec.args,
		NeedReply: rec.needReply, ReplyTo: rec.replyTo,
	})
}

// inflightFor snapshots the in-flight spawns of thread t, optionally
// restricted to one target worker (toIdx < 0 means all).
func (rt *Runtime) inflightFor(t *Thread, toIdx int) []*spawnRec {
	j := &rt.jr
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []*spawnRec
	for k, rec := range j.inflight {
		if k.t == t && (toIdx < 0 || k.toIdx == toIdx) {
			out = append(out, rec)
		}
	}
	return out
}

// RecoveryStats snapshots the recovery layer's counters.
type RecoveryStats struct {
	// SpawnsJournaled counts spawns recorded in the redo log; Commits
	// counts completions that closed their entry. After a quiescent,
	// fully recovered workload the two are equal — the zero-double-apply
	// invariant the soak asserts.
	SpawnsJournaled int64
	Commits         int64
	// Replays counts re-executions; Giveups counts spawns that exhausted
	// the attempt budget and surfaced their typed error.
	Replays int64
	Giveups int64
	// Restarts counts enclave workers torn down and re-created;
	// Redelivered counts queued messages carried over to a replacement
	// worker.
	Restarts    int64
	Redelivered int64
	// BackpressureWaits counts sends that found a bounded queue full and
	// had to wait for the consumer.
	BackpressureWaits int64
}

// RecoveryStats snapshots restart/replay/backpressure counters.
func (rt *Runtime) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		SpawnsJournaled:   rt.jr.journaled.Load(),
		Commits:           rt.jr.commits.Load(),
		Replays:           rt.jr.replays.Load(),
		Giveups:           rt.jr.giveups.Load(),
		Restarts:          rt.stats.restarts.Load(),
		Redelivered:       rt.stats.redelivered.Load(),
		BackpressureWaits: rt.stats.backpressure.Load(),
	}
}
