package prt

import (
	"fmt"
	"os"
	"time"

	"privagic/internal/obs"
)

// trace records one structured runtime event. With no tracer armed the
// Record call is a nil-receiver no-op (one branch); PRT_TRACE additionally
// renders the event to stderr, preserving the old printf tracing as a
// view over the structured stream.
func (rt *Runtime) trace(kind obs.EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	rt.Tracer.Record(kind, worker, chunk, tag, epoch, arg)
	if traceEnabled {
		fmt.Fprintf(os.Stderr, "prt: w%d %s chunk=%d tag=%d epoch=%d arg=%d\n",
			worker, kind, chunk, tag, epoch, arg)
	}
}

// traceOn is trace with an explicit shard: events recorded on one
// worker's goroutine about another worker (message sends) shard by the
// recording goroutine so the shard lock stays uncontended.
func (rt *Runtime) traceOn(shard int, kind obs.EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	rt.Tracer.RecordOn(shard, kind, worker, chunk, tag, epoch, arg)
	if traceEnabled {
		fmt.Fprintf(os.Stderr, "prt: w%d %s chunk=%d tag=%d epoch=%d arg=%d\n",
			worker, kind, chunk, tag, epoch, arg)
	}
}

// traceAt is trace with a clock value the caller already read — the spawn
// span boundaries reuse the chunk-latency histogram's reads, so a fully
// instrumented chunk costs two clock samples, not four.
func (rt *Runtime) traceAt(ts time.Time, kind obs.EventKind, worker, chunk, tag int, epoch uint64, arg int64) {
	rt.Tracer.RecordAt(ts.UnixNano(), kind, worker, chunk, tag, epoch, arg)
	if traceEnabled {
		fmt.Fprintf(os.Stderr, "prt: w%d %s chunk=%d tag=%d epoch=%d arg=%d\n",
			worker, kind, chunk, tag, epoch, arg)
	}
}

// flightDump renders the tracer's last-N events (empty with no tracer) —
// the flight record attached to aborts and timeouts.
func (rt *Runtime) flightDump() string {
	return rt.Tracer.Dump(flightRecordEvents)
}

// flightRecordEvents is how many trailing events an error's flight record
// carries: enough to cover the failing protocol phase, small enough to
// read in a terminal.
const flightRecordEvents = 64

// RegisterMetrics publishes the runtime's counters into reg (see
// OBSERVABILITY.md for the catalogue) and arms the latency histograms.
// Every prt metric is a gauge closure over a counter the runtime already
// maintains, so registration adds no hot-path work; only the two
// histograms introduce new instrumentation, each guarded by a nil check.
// Call it after the runtime is configured; workers created later are
// covered (the queue gauges aggregate over live threads at read time).
func (rt *Runtime) RegisterMetrics(reg *obs.Registry) {
	if rt == nil || reg == nil {
		return
	}
	reg.Gauge("prt.rejected_spawns", rt.stats.rejectedSpawns.Load)
	reg.Gauge("prt.rejected_conts", rt.stats.rejectedConts.Load)
	reg.Gauge("prt.hostile_spawns", rt.stats.hostileSpawns.Load)
	reg.Gauge("prt.hostile_conts", rt.stats.hostileConts.Load)
	reg.Gauge("prt.hostile_other", rt.stats.hostileOther.Load)
	reg.Gauge("prt.dropped_stale", rt.stats.droppedStale.Load)
	reg.Gauge("prt.dropped_duplicates", rt.stats.droppedDuplicates.Load)
	reg.Gauge("prt.aborts", rt.stats.aborts.Load)
	reg.Gauge("prt.timeouts", rt.stats.timeouts.Load)
	reg.Gauge("prt.drained", rt.stats.drained.Load)
	reg.Gauge("prt.restarts", rt.stats.restarts.Load)
	reg.Gauge("prt.redelivered", rt.stats.redelivered.Load)
	reg.Gauge("prt.backpressure_waits", rt.stats.backpressure.Load)
	reg.Gauge("prt.payload_tampered", rt.stats.payloadTampered.Load)
	reg.Gauge("prt.stalls", func() int64 {
		rt.stats.stallMu.Lock()
		defer rt.stats.stallMu.Unlock()
		return int64(len(rt.stats.stalls))
	})

	reg.Gauge("prt.journal.spawns", rt.jr.journaled.Load)
	reg.Gauge("prt.journal.commits", rt.jr.commits.Load)
	reg.Gauge("prt.journal.replays", rt.jr.replays.Load)
	reg.Gauge("prt.journal.giveups", rt.jr.giveups.Load)

	reg.Gauge("prt.queue.depth", func() int64 { return rt.sumQueues(func(d, _, _, _, _ int64) int64 { return d }) })
	reg.Gauge("prt.queue.enqueues", func() int64 { return rt.sumQueues(func(_, e, _, _, _ int64) int64 { return e }) })
	reg.Gauge("prt.queue.dequeues", func() int64 { return rt.sumQueues(func(_, _, d, _, _ int64) int64 { return d }) })
	reg.Gauge("prt.queue.parks", func() int64 { return rt.sumQueues(func(_, _, _, p, _ int64) int64 { return p }) })
	reg.Gauge("prt.queue.full_waits", func() int64 { return rt.sumQueues(func(_, _, _, _, f int64) int64 { return f }) })

	rt.hChunkUS = reg.Histogram("prt.chunk_exec_us")
	rt.hWaitUS = reg.Histogram("prt.wait_block_us")

	reg.Gauge("obs.trace_events", func() int64 { return rt.Tracer.Recorded() })
	reg.Gauge("obs.trace_dropped", func() int64 { return rt.Tracer.Dropped() })
}

// sumQueues folds one per-queue statistic across every live worker queue
// of every thread. Snapshot-time only; never on the hot path.
func (rt *Runtime) sumQueues(pick func(depth, enq, deq, parks, fullWaits int64) int64) int64 {
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	var total int64
	for _, t := range threads {
		t.wmu.RLock()
		workers := append([]*Worker(nil), t.Workers...)
		t.wmu.RUnlock()
		for _, w := range workers {
			enq, deq := w.q.Stats()
			total += pick(w.q.Depth(), enq, deq, w.q.Parks(), w.q.FullWaits())
		}
	}
	return total
}
