package prt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"privagic/internal/obs"
)

// TestTraceCoversSpawnProtocol runs one spawn/join round trip with the
// tracer armed and checks the structured stream: spans balance, the
// transport events carry the receiver, and counts are exact.
func TestTraceCoversSpawnProtocol(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return 7 },
	})
	rt.Tracer = obs.NewTracer(256)
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if got, err := u.Join(1); err != nil || got != 7 {
		t.Fatalf("Join = %v, %v", got, err)
	}
	counts := rt.Tracer.Counts()
	if counts["spawn"] != 1 || counts["spawn.end"] != 1 {
		t.Fatalf("span counts %v, want one spawn and one spawn.end", counts)
	}
	if counts["send"] != 2 { // the spawn out, the done back
		t.Fatalf("send count %v, want 2", counts)
	}
	if counts["join"] != 1 {
		t.Fatalf("join count %v, want 1", counts)
	}
}

// TestAbortCarriesFlightRecord checks the flight recorder: an enclave
// abort surfaces with the tracer's trailing events attached, and the
// record's last line is the abort itself.
func TestAbortCarriesFlightRecord(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { panic("enclave blew up") },
	})
	rt.Tracer = obs.NewTracer(256)
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	_, err := u.Join(1)
	var abort *EnclaveAbort
	if !errors.As(err, &abort) {
		t.Fatalf("Join = %v, want *EnclaveAbort", err)
	}
	fr := abort.FlightRecord()
	if fr == "" {
		t.Fatal("abort has no flight record despite an armed tracer")
	}
	lines := strings.Split(strings.TrimRight(fr, "\n"), "\n")
	if !strings.Contains(lines[len(lines)-1], "abort") {
		t.Fatalf("flight record's last line is not the abort:\n%s", fr)
	}
}

// TestTimeoutCarriesFlightRecord checks the other error surface: a wait
// timeout's diagnostics include the flight record next to the pending
// tags and queue depths.
func TestTimeoutCarriesFlightRecord(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{})
	rt.Tracer = obs.NewTracer(256)
	rt.Supervise = Supervision{WaitTimeout: 20 * time.Millisecond}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	_, err := u.Wait(42) // nobody ever sends tag 42
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Wait = %v, want *TimeoutError", err)
	}
	if te.FlightRecord() == "" {
		t.Fatal("timeout has no flight record despite an armed tracer")
	}
	if !strings.Contains(te.FlightRecord(), "wait") {
		t.Fatalf("flight record does not show the blocked wait:\n%s", te.FlightRecord())
	}
}

// TestWaitHistogramObservesBlockedWaits checks that RegisterMetrics arms
// the wait-latency histogram and that a satisfied blocking wait lands one
// sample derived from the admit stamp.
func TestWaitHistogramObservesBlockedWaits(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			time.Sleep(2 * time.Millisecond)
			w.SendCont(0, 5, "done")
			return nil
		},
	})
	reg := obs.NewRegistry()
	rt.RegisterMetrics(reg)
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, false)
	if got, err := u.Wait(5); err != nil || got != "done" {
		t.Fatalf("Wait = %v, %v", got, err)
	}
	snap := reg.Snapshot()
	if snap["prt.wait_block_us.count"] != 1 {
		t.Fatalf("wait histogram count = %d, want 1", snap["prt.wait_block_us.count"])
	}
	if snap["prt.chunk_exec_us.count"] != 1 {
		t.Fatalf("chunk histogram count = %d, want 1", snap["prt.chunk_exec_us.count"])
	}
}
