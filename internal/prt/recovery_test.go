package prt

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// These tests exercise the recovery layer end to end at the runtime level:
// replay-on-abort, the attempt budget, the cont replay caches, worker
// restart with epoch fencing, timeout diagnostics, and backpressure.

// TestRetryOnAbortRecovers: a chunk that crashes twice and then succeeds
// must complete the join with the correct value and no visible error, and
// the journal must record exactly one commit for the one logical spawn.
func TestRetryOnAbortRecovers(t *testing.T) {
	var execs atomic.Int32
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			if execs.Add(1) <= 2 {
				panic("injected crash")
			}
			return 42
		},
	})
	rt.Recovery = RecoveryPolicy{MaxAttempts: 3}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	got, err := u.JoinTimeout(1, 5*time.Second)
	if err != nil {
		t.Fatalf("Join after recovery: %v", err)
	}
	if got != 42 {
		t.Errorf("Join = %v, want 42", got)
	}
	if n := execs.Load(); n != 3 {
		t.Errorf("chunk executed %d times, want 3 (1 + 2 replays)", n)
	}
	rs := rt.RecoveryStats()
	if rs.SpawnsJournaled != 1 || rs.Commits != 1 {
		t.Errorf("journal: %d journaled, %d commits, want 1/1", rs.SpawnsJournaled, rs.Commits)
	}
	if rs.Replays != 2 || rs.Giveups != 0 {
		t.Errorf("replays=%d giveups=%d, want 2/0", rs.Replays, rs.Giveups)
	}
}

// TestRetryBudgetExhausted: a chunk that always crashes is replayed exactly
// MaxAttempts times, then the original typed error surfaces — carrying the
// crash-site stack captured at recover time.
func TestRetryBudgetExhausted(t *testing.T) {
	var execs atomic.Int32
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			execs.Add(1)
			panic("always crashing")
		},
	})
	rt.Recovery = RecoveryPolicy{MaxAttempts: 2}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	_, err := u.JoinTimeout(1, 5*time.Second)
	if !errors.Is(err, ErrEnclaveAbort) {
		t.Fatalf("Join = %v, want ErrEnclaveAbort after exhausted budget", err)
	}
	var abort *EnclaveAbort
	if !errors.As(err, &abort) {
		t.Fatalf("error %T does not unwrap to *EnclaveAbort", err)
	}
	if len(abort.Stack()) == 0 || !bytes.Contains(abort.Stack(), []byte("prt")) {
		t.Errorf("abort carries no usable stack: %q", abort.Stack())
	}
	if n := execs.Load(); n != 3 {
		t.Errorf("chunk executed %d times, want 3 (1 + MaxAttempts)", n)
	}
	rs := rt.RecoveryStats()
	if rs.Replays != 2 || rs.Giveups != 1 || rs.Commits != 0 {
		t.Errorf("replays=%d giveups=%d commits=%d, want 2/1/0", rs.Replays, rs.Giveups, rs.Commits)
	}
}

// TestReplayContCaches: a chunk that consumes two conts, answers with a
// third, and then crashes must replay idempotently — the consumed conts are
// re-served from the journal cache (the peer will not resend them) and the
// answered cont is suppressed (the peer already consumed it, and a fresh
// copy could satisfy a later wait on the same tag).
func TestReplayContCaches(t *testing.T) {
	var execs atomic.Int32
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			a, err := w.WaitTimeout(5, 2*time.Second)
			if err != nil {
				t.Errorf("chunk Wait(5): %v", err)
				return nil
			}
			b, err := w.WaitTimeout(6, 2*time.Second)
			if err != nil {
				t.Errorf("chunk Wait(6): %v", err)
				return nil
			}
			sum := a.(int) + b.(int)
			w.SendCont(0, 9, sum)
			if execs.Add(1) == 1 {
				panic("crash after consuming and answering")
			}
			return sum
		},
	})
	rt.Recovery = RecoveryPolicy{MaxAttempts: 3}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	u.SendCont(1, 5, 20)
	u.SendCont(1, 6, 22)
	if got, err := u.WaitTimeout(9, 5*time.Second); err != nil || got != 42 {
		t.Fatalf("Wait(9) = %v, %v, want 42", got, err)
	}
	if got, err := u.JoinTimeout(1, 5*time.Second); err != nil || got != 42 {
		t.Fatalf("Join = %v, %v, want 42", got, err)
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("chunk executed %d times, want 2", n)
	}
	// Exactly one copy of the answer cont must ever reach this worker: the
	// replay's re-send was suppressed, so a second wait on the tag starves.
	if _, err := u.WaitTimeout(9, 50*time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Errorf("second Wait(9) = %v, want timeout (replayed cont must be suppressed)", err)
	}
	rs := rt.RecoveryStats()
	if rs.Replays != 1 || rs.Commits != 1 || rs.SpawnsJournaled != 1 {
		t.Errorf("replays=%d commits=%d journaled=%d, want 1/1/1", rs.Replays, rs.Commits, rs.SpawnsJournaled)
	}
}

// TestRestartEpochFencing is the exactly-once story of a worker restart: a
// straggler completion from the pre-restart incarnation is fenced off as
// stale, while the replayed spawn's completion in the new epoch commits —
// exactly once.
func TestRestartEpochFencing(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int32
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			if execs.Add(1) == 1 {
				<-release // wedged until after the restart
				return "stale"
			}
			return "fresh"
		},
	})
	rt.Recovery = RecoveryPolicy{MaxAttempts: 3}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	oldW := th.Worker(1)
	u.Spawn(1, 1, nil, true)
	deadline := time.Now().Add(2 * time.Second)
	for execs.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("spawn never started executing")
		}
		time.Sleep(time.Millisecond)
	}

	th.RestartWorker(1)
	if th.Worker(1) == oldW {
		t.Fatal("RestartWorker did not swap in a replacement")
	}

	// Unwedge the dead incarnation and wait for it to finish: its "stale"
	// completion is now in our queue, stamped with the dead epoch.
	close(release)
	select {
	case <-oldW.stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("old worker goroutine never exited")
	}

	// The join must see exactly the replay's completion.
	got, err := u.JoinTimeout(1, 5*time.Second)
	if err != nil {
		t.Fatalf("Join after restart: %v", err)
	}
	if got != "fresh" {
		t.Errorf("Join = %v, want the replayed chunk's result", got)
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("chunk executed %d times, want 2", n)
	}
	// No second completion may ever be admitted.
	if _, err := u.JoinOneTimeout(60 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Errorf("straggler completion was admitted: JoinOne = %v, want timeout", err)
	}
	rs := rt.RecoveryStats()
	if rs.Restarts != 1 || rs.Replays != 1 || rs.Commits != 1 || rs.SpawnsJournaled != 1 {
		t.Errorf("restarts=%d replays=%d commits=%d journaled=%d, want 1/1/1/1",
			rs.Restarts, rs.Replays, rs.Commits, rs.SpawnsJournaled)
	}
	if rs.Giveups != 0 {
		t.Errorf("giveups=%d, want 0", rs.Giveups)
	}
	if ds := rt.SupervisionStats().DroppedStale; ds < 1 {
		t.Errorf("dropped-stale=%d, want >=1 (the fenced straggler)", ds)
	}
}

// TestTimeoutDiagnostics: a TimeoutError names the protocol state at
// expiry — the waiter's own tag, every sibling worker's published wait
// point, and per-worker queue depths.
func TestTimeoutDiagnostics(t *testing.T) {
	blocked := make(chan struct{})
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			close(blocked)
			if _, err := w.WaitTimeout(5, 5*time.Second); err != nil {
				t.Errorf("chunk Wait(5): %v", err)
			}
			return nil
		},
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	<-blocked
	time.Sleep(5 * time.Millisecond) // let the chunk publish its block point

	_, err := u.WaitTimeout(9, 60*time.Millisecond)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("WaitTimeout = %v, want *TimeoutError", err)
	}
	if len(te.QueueDepths) != 2 {
		t.Errorf("QueueDepths = %v, want one entry per worker", te.QueueDepths)
	}
	wantTags := map[int]bool{5: false, 9: false}
	for _, tag := range te.PendingTags {
		if _, ok := wantTags[tag]; ok {
			wantTags[tag] = true
		}
	}
	for tag, seen := range wantTags {
		if !seen {
			t.Errorf("PendingTags = %v, missing tag %d", te.PendingTags, tag)
		}
	}

	u.SendCont(1, 5, nil) // unblock the enclave chunk
	if _, err := u.JoinTimeout(1, 5*time.Second); err != nil {
		t.Fatalf("Join: %v", err)
	}
}

// TestBackpressureBoundedQueues: with a bounded queue capacity, a producer
// outrunning its consumer blocks (and is counted) instead of growing the
// queue, Runtime.Saturated reports the pressure, and every message still
// arrives in order.
func TestBackpressureBoundedQueues(t *testing.T) {
	const conts = 8
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			for i := 0; i < conts; i++ {
				w.SendCont(0, 100+i, i)
			}
			return nil
		},
	})
	rt.Supervise.QueueCapacity = 2
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)

	// The enclave floods our bounded queue; it must fill and stay full
	// (the producer blocked in EnqueueBlock) until we start draining.
	deadline := time.Now().Add(2 * time.Second)
	for !rt.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("bounded queue never reached capacity")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < conts; i++ {
		got, err := u.WaitTimeout(100+i, 2*time.Second)
		if err != nil || got != i {
			t.Fatalf("Wait(%d) = %v, %v, want %d", 100+i, got, err, i)
		}
	}
	if _, err := u.JoinTimeout(1, 2*time.Second); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if bp := rt.RecoveryStats().BackpressureWaits; bp == 0 {
		t.Error("producer never felt backpressure on the bounded queue")
	}
	if rt.Saturated() {
		t.Error("Saturated still true after the queues drained")
	}
}
