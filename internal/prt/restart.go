package prt

import (
	"time"

	"privagic/internal/obs"
)

// RestartWorker tears down the enclave worker bound to color index idx and
// re-creates it in a fresh epoch: the replacement gets a new queue and a
// new goroutine, the thread's epoch advances so every message stamped for
// the dead incarnation is fenced off as stale, the old queue's undrained
// authentic messages are re-stamped into the new epoch and re-delivered,
// and the journal's in-flight spawns are replayed. The old goroutine is
// sent a stop and exits on its own schedule — if it is wedged inside a
// chunk, its eventual completions carry the dead epoch and cannot commit
// (the epoch fence is what makes "exactly once" survive a restart).
//
// Restart is the watchdog's escalation for a stuck worker and a test's
// crash lever; callers must hold no runtime locks. Returns the number of
// queued messages carried over.
func (t *Thread) RestartWorker(idx int) int {
	rt := t.RT
	if idx <= 0 || idx >= t.nw || t.closed.Load() {
		return 0
	}
	t.wmu.Lock()
	old := t.Workers[idx]
	repl := &Worker{
		Thread:  t,
		Index:   idx,
		Mode:    old.Mode,
		Engine:  old.Engine,
		q:       rt.newWorkerQueue(),
		stopped: make(chan struct{}),
	}
	t.Workers[idx] = repl
	t.wmu.Unlock()
	rt.stats.restarts.Add(1)
	rt.trace(obs.EvRestart, idx, 0, 0, t.epoch.Load(), 0)

	// Fence the dead incarnation: everything it still sends (a straggler
	// Done from a chunk that was mid-run when we gave up on it) carries
	// the old epoch and is dropped at the admit gate.
	t.AdvanceEpoch()

	// Carry over the undrained queue. Spawn messages re-deliver through
	// the journal replay below (so their attempt accounting is right);
	// everything else re-stamps into the new epoch. The old goroutine may
	// race this drain — a message it wins executes under the dead epoch
	// and its effects are fenced, so the race only costs a redelivery.
	redelivered := 0
	carried := map[int]bool{} // chunk IDs already back in flight
	for {
		msg, ok := old.q.Dequeue()
		if !ok {
			break
		}
		if msg.auth != authStamp || msg.Kind == msgStop {
			continue
		}
		if msg.Kind == MsgSpawn {
			carried[msg.ChunkID] = true
		}
		redelivered++
		rt.send(nil, repl, msg)
	}
	// Buffered consumer-side state of the old incarnation is stale by
	// construction (old epoch); the new worker starts clean.

	// Replay in-flight spawns of this thread. The restarted worker's own
	// spawns are gone with the old goroutine; spawns on *other* workers
	// were fenced along with the epoch advance, so the whole invocation's
	// spawn set is re-issued. Each replay spends one attempt.
	for _, rec := range rt.inflightFor(t, -1) {
		rec.mu.Lock()
		skip := rec.toIdx == idx && carried[rec.chunkID]
		rec.attempts++
		exhausted := rec.attempts > rt.Recovery.MaxAttempts
		rec.mu.Unlock()
		if skip {
			continue // the queued (not yet consumed) spawn was carried over
		}
		if !rt.Recovery.Enabled() || exhausted {
			// Out of budget: leave the entry to the joiner's timeout.
			continue
		}
		rt.jr.replays.Add(1)
		rt.respawn(t, rec)
	}
	rt.stats.redelivered.Add(int64(redelivered))

	// Ask the dead incarnation to exit when it next reads its queue, then
	// start the replacement.
	old.q.Enqueue(Message{Kind: msgStop, auth: authStamp})
	t.wg.Add(1)
	go repl.loop(&t.wg)
	rt.Meter.ChargeTransition(&rt.Machine.Cost)
	rt.lastAdmit.Store(time.Now().UnixNano())
	return redelivered
}
