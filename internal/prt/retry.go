// Recovery (this file, journal.go, restart.go) is the second half of the
// fault story supervision started: supervision turns a crashed or wedged
// enclave into a typed error; recovery turns the typed error back into a
// completed request. A poisoned completion (the chunk aborted) is not
// surfaced to the joiner — the spawn is replayed from its journaled
// arguments, with exponential backoff and jitter, until it commits or the
// attempt budget is exhausted. Only then does the original typed error
// escape. SecV and EnclaveDom both observe that partitioned-enclave
// systems amplify failure domains (every cross-domain call is a new place
// to wedge); bounding the amplification inside the runtime is what lets
// every caller stay oblivious.
//
// The backoff schedule itself lives in internal/retry: the cluster router
// re-sends failed shard requests under the same policy, so the doubling,
// cap and jitter semantics are defined (and tested) exactly once.
//
// (Not the package comment — that is runtime.go's.)

package prt

import "privagic/internal/retry"

// RecoveryPolicy bounds the runtime's restart/replay behavior. The zero
// value disables recovery (PR 1's surface-the-error behavior). It is the
// shared retry.Policy: MaxAttempts is the per-spawn replay budget,
// Backoff/MaxBackoff/Jitter shape the delay before each replay.
type RecoveryPolicy = retry.Policy
