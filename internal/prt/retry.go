// Recovery (this file, journal.go, restart.go) is the second half of the
// fault story supervision started: supervision turns a crashed or wedged
// enclave into a typed error; recovery turns the typed error back into a
// completed request. A poisoned completion (the chunk aborted) is not
// surfaced to the joiner — the spawn is replayed from its journaled
// arguments, with exponential backoff and jitter, until it commits or the
// attempt budget is exhausted. Only then does the original typed error
// escape. SecV and EnclaveDom both observe that partitioned-enclave
// systems amplify failure domains (every cross-domain call is a new place
// to wedge); bounding the amplification inside the runtime is what lets
// every caller stay oblivious.
//
// (Not the package comment — that is runtime.go's.)

package prt

import (
	"math/rand"
	"sync"
	"time"
)

// RecoveryPolicy bounds the runtime's restart/replay behavior. The zero
// value disables recovery (PR 1's surface-the-error behavior).
type RecoveryPolicy struct {
	// MaxAttempts is how many times a failed spawn is replayed before its
	// typed error is surfaced to the joiner. 0 disables recovery; the
	// budget is per spawn, so an unlucky request costs at most
	// MaxAttempts+1 executions — bounded recovery, never a retry loop.
	MaxAttempts int
	// Backoff is the delay before the first replay (default 100µs). Each
	// further replay doubles it up to MaxBackoff (default 2ms). The
	// defaults sit well inside a sane supervision window: replay traffic
	// restarts the inactivity window, so backoff never reads as a stall.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2),
	// decorrelating the replays of independent threads so a mass failure
	// does not re-spawn in lockstep.
	Jitter float64
}

// Enabled reports whether the policy performs any recovery.
func (p RecoveryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// jitterRng decorrelates replay delays. Jitter is deliberately outside
// the deterministic fault-schedule RNG: it perturbs timing only, never a
// protocol decision.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

// delay computes the backoff before replay number attempt (1-based).
func (p RecoveryPolicy) delay(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	jit := p.Jitter
	if jit <= 0 {
		jit = 0.2
	}
	if jit > 1 {
		jit = 1
	}
	jitterMu.Lock()
	f := 1 + jit*(2*jitterRng.Float64()-1)
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}
