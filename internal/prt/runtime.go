// Package prt is the Privagic runtime (paper §5, §7.3): it runs one worker
// thread per (application thread × enclave), each with a communication
// channel implemented as a lock-free FIFO queue stored in unsafe memory,
// and provides the spawn message, the cont message, and the wait function
// that the partitioned code uses (§7.3.2).
//
// Enclave workers live inside their enclave (the FastSGX model [40]): a
// message hop costs one queue round trip, not an enclave transition —
// which is precisely why the paper's Figure 9 shows Privagic beating the
// Intel SDK's lock-based switchless calls.
//
// Because the queues live in U memory, everything read off them is
// attacker-controlled (the Iago stance of §4). The runtime therefore
// treats every dequeued message as hostile until proven otherwise: spawn
// messages are checked against the ValidateSpawn whitelist (§8), and all
// messages carry an authentication stamp (the simulated analogue of a MAC
// over the message body), a per-(epoch, receiver) stream sequence number
// (the receiver reassembles the exact send order, which both suppresses
// replayed duplicates and undoes adversarial reordering — generated code
// pipelines order-sensitive same-tag cont streams, so FIFO delivery is a
// correctness requirement, not an optimization), and an epoch (staleness
// fencing across invocations). See Worker.next. The supervision layer
// (supervise.go) adds inactivity deadlines, abort propagation and a
// watchdog so a crashed enclave or a lost cont degrades into a typed
// error instead of a deadlock.
package prt

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/obs"
	"privagic/internal/queue"
	"privagic/internal/sgx"
)

// traceEnabled turns on stderr rendering of structured trace events via
// the PRT_TRACE environment variable (debugging aid for generated-protocol
// issues). The events themselves are recorded by Runtime.Tracer — see
// internal/obs and OBSERVABILITY.md; PRT_TRACE is just a live text view.
var traceEnabled = os.Getenv("PRT_TRACE") != ""

// MsgKind discriminates runtime messages.
type MsgKind int

// Message kinds: Spawn starts a chunk on the receiving worker; Cont carries
// a Free value to a waiting chunk; Done is a spawn-completion notification
// carrying the chunk's return value.
const (
	MsgSpawn MsgKind = iota + 1
	MsgCont
	MsgDone
	msgStop
)

// authStamp marks a message as produced by the trusted runtime (the
// simulation of a MAC computed inside the enclave). The field is
// unexported, so code outside this package — including the fault injector
// playing the attacker — cannot forge it; it can only replay complete
// messages, which the stream-sequence reassembly catches (a replayed
// message re-arrives below the receiver's consumed watermark).
const authStamp uint32 = 0x5afe

// reorderBufCap bounds the receiver-side reassembly buffer. A gap that
// never fills (permanent loss) stalls the stream; the inactivity timeout
// converts the stall into a typed error long before a sane protocol
// accumulates this many out-of-order messages, so the cap only guards
// against a pathological adversary ballooning memory.
const reorderBufCap = 1024

// Message is one element of a worker's lock-free channel.
type Message struct {
	Kind MsgKind
	// Spawn fields.
	ChunkID   int
	Args      []any
	NeedReply bool
	ReplyTo   *Worker
	// Cont/Done payload.
	Payload any
	// From is the color index of the sending worker (set on Done).
	From int
	// Tag matches a cont message with its wait point. Two producers
	// sending to the same consumer are only ordered through causality,
	// which goroutine scheduling can break; the static tag (assigned
	// per transport by the partitioner) makes delivery order-free.
	Tag int
	// Err poisons a Done: the spawned chunk aborted (EnclaveAbort)
	// instead of completing, and the joiner must surface the error.
	Err error

	// Trusted-side metadata (see package comment). Unexported on
	// purpose: a forged message cannot carry a valid auth stamp. strSeq
	// is the position of this message in its (epoch, receiver) stream,
	// assigned at send time; the receiver delivers strictly in strSeq
	// order, so duplicates and reorderings cannot reach the protocol.
	// paySum extends the stamp from the message struct to its payload
	// words (Runtime.PayloadTags): a checksum over kind, routing fields
	// and payload values, computed at send time and re-verified at the
	// admit gate, so mutating a queued message in place — auth stamp and
	// sequence intact — is detected on dequeue.
	auth   uint32
	strSeq uint64
	epoch  uint64
	paySum uint64
}

// ChunkExec executes the body of a chunk; the interpreter and the native
// benchmark harness plug in here. It runs on the worker's goroutine with
// the worker's enclave as the active mode.
type ChunkExec func(w *Worker, chunkID int, args []any) any

// Interceptor is the fault-injection seam: when installed, every runtime
// message is handed to Deliver instead of being enqueued directly, and the
// interceptor decides what actually reaches the queue (EnqueueRaw), in
// what order, and how many times. Control (stop) messages bypass it.
type Interceptor interface {
	Deliver(to *Worker, msg Message)
}

// interceptorBox wraps the interface for atomic.Pointer storage.
type interceptorBox struct{ ic Interceptor }

// Engine selects the chunk execution tier workers run their bodies on.
// The runtime itself is engine-agnostic — the value is plumbed to each
// Worker at creation (and across restarts) so the embedder's ChunkExec
// callback can pick the tier per worker; see internal/interp.
type Engine uint8

const (
	// EngineInterp runs chunk bodies on the reference interpreter.
	EngineInterp Engine = iota
	// EngineCompiled runs chunk bodies as closure-compiled step arrays
	// (internal/passes/compile).
	EngineCompiled
	// EngineDifferential runs the interpreter live, then replays the
	// compiled tier against the recorded trace and hard-errors on any
	// divergence (the differential oracle, DESIGN.md §18).
	EngineDifferential
)

// String names the engine for diagnostics.
func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineDifferential:
		return "differential"
	default:
		return "interp"
	}
}

// Runtime owns the enclaves and cost accounting of one partitioned
// application execution.
type Runtime struct {
	Machine *sgx.Machine
	Meter   *sgx.Meter
	Space   *sgx.AddressSpace
	Colors  []string // enclave names; index i -> region ID i+1
	Exec    ChunkExec

	// ValidateSpawn, when set, is consulted inside the enclave before a
	// spawn message is honored (the §8 future-work defense against
	// attacker-injected spawns): return false to reject. The check runs
	// in enclave mode, so the whitelist itself is tamper-proof.
	ValidateSpawn func(workerIdx, chunkID int) bool

	// ValidateCont, when set, rejects cont messages whose tag the
	// partitioner never allocated (defense-in-depth beside the auth
	// stamp: a forged tag must not park forever in a pending buffer).
	ValidateCont func(tag int) bool

	// PayloadTags arms payload integrity tags (part of the runtime Iago
	// defense): outbound messages carry a checksum over their payload
	// words, and the admit gate rejects any message whose contents no
	// longer match — the in-place queue mutation the plain auth stamp
	// cannot see. Set it before creating threads.
	PayloadTags bool

	// Supervise configures the fault-tolerance layer (zero = off).
	// Set it before creating threads.
	Supervise Supervision

	// Recovery configures bounded restart/replay of aborted spawns
	// (zero = off, the surface-the-error behavior). Set it before
	// creating threads; see retry.go and journal.go.
	Recovery RecoveryPolicy

	// Engine is the execution tier copied to every worker created after
	// it is set (SetEngine on the interpreter sets it before the first
	// thread exists). Restarted workers inherit their predecessor's
	// engine, so a mid-run restart cannot silently change tiers.
	Engine Engine

	// Tracer, when set, records a structured event per runtime decision
	// (admit-gate rejects, spawns, waits, replays, restarts — see
	// internal/obs and OBSERVABILITY.md). Nil disables tracing at the
	// cost of one branch per site. Set it before creating threads.
	Tracer *obs.Tracer

	// hChunkUS/hWaitUS are the latency histograms RegisterMetrics arms
	// (nil = no timing instrumentation at all).
	hChunkUS *obs.Histogram
	hWaitUS  *obs.Histogram

	// jr is the spawn redo log backing Recovery.
	jr journal

	interceptor atomic.Pointer[interceptorBox]

	// lastAdmit is the UnixNano timestamp of the most recent admitted
	// message anywhere in the runtime. The inactivity window measures
	// system-wide quiescence against it: a waiter whose own queue is
	// silent keeps waiting while other workers are still making
	// progress (a deep protocol phase may not touch every worker for a
	// while), and gives up only once the whole runtime has been quiet
	// for a full window — which a genuine loss or deadlock forces.
	lastAdmit atomic.Int64

	stats        supCounters
	watchdogOnce sync.Once
	watchdogStop chan struct{}
	shutdownOnce sync.Once

	mu      sync.Mutex
	threads []*Thread
}

// RejectedSpawns reports how many spawn messages validation refused.
func (rt *Runtime) RejectedSpawns() int64 { return rt.stats.rejectedSpawns.Load() }

// SetInterceptor installs (or removes, with nil) the fault-injection hook.
func (rt *Runtime) SetInterceptor(ic Interceptor) {
	if ic == nil {
		rt.interceptor.Store(nil)
		return
	}
	rt.interceptor.Store(&interceptorBox{ic: ic})
}

// New creates a runtime with one enclave region per color.
func New(m *sgx.Machine, colors []string, exec ChunkExec) *Runtime {
	return &Runtime{
		Machine: m,
		Meter:   &sgx.Meter{},
		Space:   sgx.NewAddressSpace(colors...),
		Colors:  colors,
		Exec:    exec,
	}
}

// RegionOf maps a color index (0 = unsafe) to its region.
func (rt *Runtime) RegionOf(colorIdx int) sgx.RegionID {
	return sgx.RegionID(colorIdx)
}

// Worker is the execution context bound to one enclave (or to normal mode
// for index 0) within one application thread.
type Worker struct {
	Thread *Thread
	Index  int // 0 = normal mode; i>0 = enclave i
	Mode   sgx.Mode

	q *queue.Queue[Message]
	// pending buffers messages received while waiting for a different
	// kind.
	pendingCont []Message
	pendingDone []Message
	stopped     chan struct{}

	// Consumer-side state, touched only on the worker's own goroutine
	// (or the app thread, for index 0). ordEpoch/expect/reorderBuf
	// reassemble the sender-side stream order: expect is the highest
	// strSeq consumed this epoch, reorderBuf parks messages that arrived
	// ahead of a gap.
	ordEpoch   uint64
	expect     uint64
	reorderBuf map[uint64]Message
	execEpoch  uint64 // epoch of the spawn currently executing
	stopping   bool   // a stop was consumed mid-protocol
	// admitNS is the wall clock of this worker's most recent admitted
	// message — the per-worker twin of rt.lastAdmit, reusing the same
	// clock read. The wait-latency histogram derives block durations
	// from it instead of reading the clock again.
	admitNS int64

	// curRec is the journal entry of the spawn currently executing on
	// this worker (nil when recovery is off): the cont replay caches
	// live there. Touched only on the worker's own goroutine.
	curRec *spawnRec

	// Tx is a per-execution scratch slot owned by the embedder (the
	// interpreter parks its effect transaction here). Touched only on
	// the worker's own goroutine.
	Tx any

	// Snap is a second embedder-owned scratch slot: the interpreter
	// parks its boundary snapshot (the copy-in cache of U loads for the
	// current barrier interval) here. Touched only on the worker's own
	// goroutine.
	Snap any

	// Engine is the execution tier this worker runs chunk bodies on,
	// copied from Runtime.Engine at creation (and from the predecessor
	// on restart).
	Engine Engine

	// Diff is a third embedder-owned scratch slot: the differential
	// oracle parks its live-run trace recorder here while a chunk is
	// being recorded. Touched only on the worker's own goroutine.
	Diff any

	// block publishes what the worker is blocked on, for the watchdog
	// and for timeout diagnostics.
	block atomic.Pointer[blockInfo]
}

// Thread models one application thread: the normal-mode context plus one
// worker goroutine per enclave ("for each thread of the application,
// Privagic runs one worker thread per enclave", §8).
type Thread struct {
	RT *Runtime
	// Workers holds the live worker of each color (index 0 is the app
	// thread itself, normal mode). A restart swaps a replacement in
	// under wmu; use Worker()/Normal() rather than indexing directly
	// when restarts may be live.
	Workers []*Worker
	wmu     sync.RWMutex
	nw      int // worker count, fixed at creation (len(Workers))
	wg      sync.WaitGroup
	epoch   atomic.Uint64
	closed  atomic.Bool

	// sendMu guards sendSeqs: per-epoch, per-receiver stream counters.
	// Stamping happens under the lock, so concurrent senders to the same
	// receiver get distinct consecutive positions; the receiver then
	// reconstructs exactly this order regardless of delivery order.
	sendMu   sync.Mutex
	sendSeqs map[uint64][]uint64

	// ctx is canceled by Close so goroutines sleeping inside a recovery
	// backoff (retry.Policy.Sleep) wake immediately instead of serving
	// out the delay against a thread that is already shutting down.
	ctx    context.Context
	cancel context.CancelFunc
}

// nextStrSeq allocates the next stream position for a message to the
// receiver with the given index, within the given epoch. Counters of
// epochs older than epoch-1 can no longer produce admissible messages and
// are pruned.
func (t *Thread) nextStrSeq(epoch uint64, toIdx int) uint64 {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if t.sendSeqs == nil {
		t.sendSeqs = make(map[uint64][]uint64, 2)
	}
	s := t.sendSeqs[epoch]
	if s == nil {
		s = make([]uint64, t.nw)
		t.sendSeqs[epoch] = s
		for e := range t.sendSeqs {
			if e+1 < epoch {
				delete(t.sendSeqs, e)
			}
		}
	}
	s[toIdx]++
	return s[toIdx]
}

// newWorkerQueue creates a worker channel honoring the configured queue
// capacity: bounded when Supervise.QueueCapacity > 0 (senders then feel
// backpressure through rt.send), unbounded otherwise.
func (rt *Runtime) newWorkerQueue() *queue.Queue[Message] {
	if c := rt.Supervise.QueueCapacity; c > 0 {
		return queue.NewBounded[Message](c)
	}
	return queue.New[Message]()
}

// NewThread creates the workers of one application thread and starts the
// enclave goroutines.
func (rt *Runtime) NewThread() *Thread {
	t := &Thread{RT: rt}
	t.ctx, t.cancel = context.WithCancel(context.Background())
	for i := 0; i <= len(rt.Colors); i++ {
		w := &Worker{
			Thread:  t,
			Index:   i,
			Mode:    rt.RegionOf(i),
			Engine:  rt.Engine,
			q:       rt.newWorkerQueue(),
			stopped: make(chan struct{}),
		}
		t.Workers = append(t.Workers, w)
	}
	t.nw = len(t.Workers)
	for _, w := range t.Workers[1:] {
		t.wg.Add(1)
		go w.loop(&t.wg)
		// Starting a worker inside an enclave costs one transition.
		rt.Meter.ChargeTransition(&rt.Machine.Cost)
	}
	rt.mu.Lock()
	rt.threads = append(rt.threads, t)
	rt.mu.Unlock()
	rt.maybeStartWatchdog()
	return t
}

// AdvanceEpoch fences a new top-level invocation: messages stamped with an
// older epoch (stragglers of a failed or timed-out run, late retransmits,
// delayed duplicates) are discarded instead of being matched against the
// new invocation's waits. Call it only at a protocol quiescent point.
func (t *Thread) AdvanceEpoch() { t.epoch.Add(1) }

// Close stops the thread's enclave workers, waits for them to exit, and
// drains every leftover message (a crashed protocol must not leak queue
// contents into a later reuse of the address space). Close is idempotent.
func (t *Thread) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.cancel != nil {
		t.cancel()
	}
	t.wmu.RLock()
	workers := append([]*Worker(nil), t.Workers...)
	t.wmu.RUnlock()
	for _, w := range workers[1:] {
		// Control messages bypass the interceptor: the attacker owns
		// the data plane, not the host's ability to stop a worker.
		w.q.Enqueue(Message{Kind: msgStop, auth: authStamp})
	}
	t.wg.Wait()
	drained := int64(0)
	for _, w := range workers {
		for {
			if _, ok := w.q.Dequeue(); !ok {
				break
			}
			drained++
		}
		drained += int64(len(w.pendingCont) + len(w.pendingDone) + len(w.reorderBuf))
		w.pendingCont, w.pendingDone, w.reorderBuf = nil, nil, nil
	}
	if drained > 0 {
		t.RT.stats.drained.Add(drained)
	}
}

// Normal returns the normal-mode context of the thread.
func (t *Thread) Normal() *Worker { return t.Worker(0) }

// Worker returns the live worker bound to colorIdx (0 = normal mode).
// After a restart this is the replacement, not the dead incarnation.
func (t *Thread) Worker(colorIdx int) *Worker {
	t.wmu.RLock()
	w := t.Workers[colorIdx]
	t.wmu.RUnlock()
	return w
}

// EnqueueRaw places a message on the worker's queue exactly as given,
// preserving its trusted-side metadata. This is how an interceptor
// releases (or duplicates) messages it previously captured.
func (w *Worker) EnqueueRaw(msg Message) { w.q.Enqueue(msg) }

// DequeueRaw pops the worker's next queued message without the admit gate —
// the inspection half of the injector seam (EnqueueRaw is the insertion
// half). Tests and diagnostics only: consuming a live worker's messages
// breaks the protocol.
func (w *Worker) DequeueRaw() (Message, bool) { return w.q.Dequeue() }

// DeliverHostile enqueues a message without the runtime's authentication
// stamp — the simulation of an attacker writing a forged message into the
// U-memory queue. The receiving worker is expected to reject it.
func (w *Worker) DeliverHostile(msg Message) {
	msg.auth = 0
	w.q.Enqueue(msg)
}

// epochNow is the epoch to stamp on outbound messages: the app thread
// defines the thread's epoch; an enclave worker propagates the epoch of
// the spawn it is executing, so a straggler finishing old work cannot
// pollute a newer invocation.
func (w *Worker) epochNow() uint64 {
	if w.Index == 0 {
		return w.Thread.epoch.Load()
	}
	return w.execEpoch
}

// loop is the top-level scheduler of an enclave worker: it executes spawn
// messages forever (Figure 7's "wait()" at the top of each enclave column).
func (w *Worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(w.stopped)
	for {
		msg, ok := w.next(time.Time{})
		if !ok {
			return
		}
		switch msg.Kind {
		case msgStop:
			return
		case MsgSpawn:
			w.runSpawn(msg)
			if w.stopping {
				// A stop was consumed by a nested wait inside the
				// spawn; honor it now.
				return
			}
		case MsgCont:
			// A cont for a chunk that is not running. With correct
			// generated code this cannot happen; after a chunk crashed
			// mid-protocol its peers' leftover conts land here. Under
			// recovery they must survive — the replayed chunk will wait
			// for them — so they are buffered; otherwise dropping them
			// keeps the worker alive for the next request.
			if w.Thread.RT.Recovery.Enabled() && len(w.pendingCont) < reorderBufCap {
				w.pendingCont = append(w.pendingCont, msg)
			}
			continue
		case MsgDone:
			// A completion with no joiner on this worker. After a chunk
			// crashed between spawning nested work and joining it, the
			// nested completions land here; under recovery the chunk's
			// replay will join them, so they are buffered. Otherwise drop.
			if w.Thread.RT.Recovery.Enabled() && len(w.pendingDone) < reorderBufCap {
				w.pendingDone = append(w.pendingDone, msg)
			}
			continue
		}
	}
}

// next returns the next trustworthy message in its sender-side stream
// order. It is the Iago gate: forged messages (missing auth stamp) and
// stale stragglers (older epoch) are rejected outright, and authentic
// messages are reassembled by strSeq — a replay arrives at or below the
// consumed watermark and is dropped as a duplicate, an overtaking message
// parks in reorderBuf until the gap before it fills. A zero deadline
// blocks forever; otherwise ok=false on timeout (parked out-of-order
// arrivals do not count as progress, so a permanent gap still times out).
// Runs only on the worker's consumer goroutine.
func (w *Worker) next(deadline time.Time) (Message, bool) {
	rt := w.Thread.RT
	for {
		// The stream state follows the thread's epoch.
		if e := w.Thread.epoch.Load(); w.ordEpoch != e {
			w.resetStream(e)
		}
		// A previously parked successor may now be deliverable.
		if msg, ok := w.reorderBuf[w.expect+1]; ok {
			delete(w.reorderBuf, w.expect+1)
			w.expect++
			now := time.Now().UnixNano()
			rt.lastAdmit.Store(now)
			w.admitNS = now
			if w.accept(msg) {
				return msg, true
			}
			continue
		}
		var msg Message
		if deadline.IsZero() {
			msg = w.q.DequeueBlock()
		} else {
			var ok bool
			msg, ok = w.q.DequeueTimeout(time.Until(deadline))
			if !ok {
				return Message{}, false
			}
		}
		if msg.auth != authStamp {
			switch msg.Kind {
			case MsgSpawn:
				rt.stats.hostileSpawns.Add(1)
			case MsgCont:
				rt.stats.hostileConts.Add(1)
			default:
				rt.stats.hostileOther.Add(1)
			}
			rt.trace(obs.EvRejectForged, w.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.Kind))
			continue
		}
		if msg.Kind == msgStop {
			return msg, true
		}
		switch {
		case msg.epoch < w.ordEpoch:
			rt.stats.droppedStale.Add(1)
			rt.trace(obs.EvDropStale, w.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.Kind))
			continue
		case msg.epoch > w.ordEpoch:
			// The thread advanced between our epoch load and this
			// dequeue; adopt the newer epoch.
			w.resetStream(msg.epoch)
		}
		switch {
		case msg.strSeq <= w.expect:
			rt.stats.droppedDuplicates.Add(1)
			rt.trace(obs.EvDropDuplicate, w.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.strSeq))
			continue
		case msg.strSeq > w.expect+1:
			if len(w.reorderBuf) < reorderBufCap {
				if w.reorderBuf == nil {
					w.reorderBuf = make(map[uint64]Message, 8)
				}
				w.reorderBuf[msg.strSeq] = msg
				rt.trace(obs.EvParkReorder, w.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.strSeq))
			} else {
				rt.stats.droppedStale.Add(1)
			}
			continue
		}
		w.expect++
		now := time.Now().UnixNano()
		rt.lastAdmit.Store(now)
		w.admitNS = now
		if w.accept(msg) {
			return msg, true
		}
	}
}

// sysActiveWithin reports whether any worker of the runtime admitted a
// message in the last d. Hostile, duplicate and stale rejects do not
// count: a forged or replayed flood cannot keep a doomed wait alive.
func (rt *Runtime) sysActiveWithin(d time.Duration) bool {
	last := rt.lastAdmit.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < d
}

// resetStream rebases the consumer's stream state onto a new epoch,
// discarding parked messages of the old one.
func (w *Worker) resetStream(epoch uint64) {
	w.ordEpoch = epoch
	w.expect = 0
	if n := len(w.reorderBuf); n > 0 {
		w.Thread.RT.stats.droppedStale.Add(int64(n))
		clear(w.reorderBuf)
	}
}

// accept applies the content checks to an authentic, in-order message. A
// rejected message has already consumed its stream position, so the
// stream keeps flowing past it.
func (w *Worker) accept(msg Message) bool {
	rt := w.Thread.RT
	if rt.PayloadTags && msg.paySum != payloadSum(&msg) {
		rt.stats.payloadTampered.Add(1)
		rt.trace(obs.EvRejectPayload, w.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.Kind))
		return false
	}
	if msg.Kind == MsgCont && rt.ValidateCont != nil && !rt.ValidateCont(msg.Tag) {
		rt.stats.rejectedConts.Add(1)
		rt.trace(obs.EvRejectContTag, w.Index, msg.ChunkID, msg.Tag, msg.epoch, 0)
		return false
	}
	return true
}

// prunePending drops buffered messages from older epochs before a wait
// point consults the buffers.
func (w *Worker) prunePending() {
	e := w.Thread.epoch.Load()
	prune := func(buf []Message) []Message {
		kept := buf[:0]
		for _, m := range buf {
			if m.epoch < e {
				w.Thread.RT.stats.droppedStale.Add(1)
				continue
			}
			kept = append(kept, m)
		}
		return kept
	}
	w.pendingCont = prune(w.pendingCont)
	w.pendingDone = prune(w.pendingDone)
}

// runSpawn executes a spawned chunk and reports completion. A panicking
// chunk is the simulated AEX: instead of killing the worker goroutine (and
// deadlocking the joiner forever), the panic is converted into a poisoned
// MsgDone carrying an *EnclaveAbort, and the worker survives to serve the
// next request.
func (w *Worker) runSpawn(msg Message) {
	rt := w.Thread.RT
	prevEpoch := w.execEpoch
	w.execEpoch = msg.epoch
	defer func() { w.execEpoch = prevEpoch }()
	if rt.ValidateSpawn != nil && !rt.ValidateSpawn(w.Index, msg.ChunkID) {
		rt.stats.rejectedSpawns.Add(1)
		if msg.ReplyTo != nil {
			// Still complete the join so legitimate peers cannot be
			// deadlocked by a rejected injection racing a real spawn.
			rt.send(w, msg.ReplyTo, Message{Kind: MsgDone, From: w.Index, ChunkID: msg.ChunkID})
		}
		return
	}
	// Bind the journal entry (if any) for the duration of the execution:
	// the cont replay caches live there. Saved/restored so a nested spawn
	// on the same worker does not clobber the outer chunk's caches.
	prevRec := w.curRec
	if rt.Recovery.Enabled() {
		if rec := rt.lookupSpawn(w.Thread, w.Index, msg.ChunkID); rec != nil {
			rec.beginAttempt()
			w.curRec = rec
		} else {
			w.curRec = nil
		}
	} else {
		w.curRec = nil
	}
	defer func() { w.curRec = prevRec }()
	// One clock read serves both the span-open event and the latency
	// histogram; with neither armed the spawn path never touches the clock.
	var started time.Time
	if rt.hChunkUS != nil || rt.Tracer != nil {
		started = time.Now()
	}
	rt.traceAt(started, obs.EvSpawn, w.Index, msg.ChunkID, 0, msg.epoch, 0)
	var ret any
	aborted := func() (aborted bool) {
		defer func() {
			if r := recover(); r != nil {
				aborted = true
				rt.stats.aborts.Add(1)
				cause, ok := r.(error)
				if !ok {
					cause = fmt.Errorf("panic: %v", r)
				}
				abort := &EnclaveAbort{
					Worker: w.Index, ChunkID: msg.ChunkID, Cause: cause,
					stack: debug.Stack(),
				}
				rt.trace(obs.EvAbort, w.Index, msg.ChunkID, 0, msg.epoch, 0)
				// Snapshot the flight record after the abort event, so
				// the record's last line is the abort itself.
				abort.flight = rt.flightDump()
				if msg.ReplyTo != nil {
					rt.send(w, msg.ReplyTo, Message{Kind: MsgDone, From: w.Index, ChunkID: msg.ChunkID, Err: abort})
				}
			}
		}()
		ret = rt.Exec(w, msg.ChunkID, msg.Args)
		return false
	}()
	var ended time.Time
	if rt.hChunkUS != nil || rt.Tracer != nil {
		ended = time.Now()
	}
	if rt.hChunkUS != nil {
		rt.hChunkUS.Observe(ended.Sub(started).Microseconds())
	}
	rt.traceAt(ended, obs.EvSpawnEnd, w.Index, msg.ChunkID, 0, msg.epoch, 0)
	if !aborted && msg.ReplyTo != nil {
		rt.send(w, msg.ReplyTo, Message{Kind: MsgDone, Payload: ret, From: w.Index, ChunkID: msg.ChunkID})
	}
}

// send enqueues a message, charging one queue hop. from is the sending
// worker (epoch provenance); the interceptor, when installed, owns the
// actual delivery.
func (rt *Runtime) send(from, to *Worker, msg Message) {
	rt.Meter.ChargeMessage(&rt.Machine.Cost)
	msg.auth = authStamp
	if from != nil {
		msg.epoch = from.epochNow()
	} else {
		msg.epoch = to.Thread.epoch.Load()
	}
	msg.strSeq = to.Thread.nextStrSeq(msg.epoch, to.Index)
	// Trace after the routing metadata is final: the event carries the
	// stream position the receiver will reassemble by. Worker = receiver,
	// but the event lands in the sender's shard — recording is on the
	// sender's goroutine, and sharding by it keeps the lock uncontended.
	shard := to.Index
	if from != nil {
		shard = from.Index
	}
	rt.traceOn(shard, obs.EvSend, to.Index, msg.ChunkID, msg.Tag, msg.epoch, int64(msg.strSeq))
	if rt.PayloadTags {
		// Tag after the routing metadata is final: the sum covers epoch
		// and strSeq too, so a mutated copy cannot borrow a stale tag.
		msg.paySum = payloadSum(&msg)
	}
	if box := rt.interceptor.Load(); box != nil {
		box.ic.Deliver(to, msg)
		return
	}
	if to.q.Capacity() > 0 {
		// Bounded queue: make the producer feel a full consumer instead
		// of letting the queue grow without limit (end-to-end
		// backpressure). The counter is what admission control upstream
		// (e.g. the memcached front-end) reads to start shedding.
		if !to.q.TryEnqueue(msg) {
			rt.stats.backpressure.Add(1)
			to.q.EnqueueBlock(msg)
		}
		return
	}
	to.q.Enqueue(msg)
}

// JournalLoad threads one memory load of the currently executing chunk
// through its journal entry's replay cache: on a replay, buf is
// overwritten with the bytes the crashed attempt read at this position;
// on a live attempt, buf is recorded. A no-op when the executing chunk is
// not journaled. The embedder (the interpreter) calls this on every
// mode-checked load so a replay observes the memory of the attempt its
// peers already reacted to, not whatever committed nested effects have
// since made of it.
func (w *Worker) JournalLoad(buf []byte) {
	if rec := w.curRec; rec != nil {
		rec.journalLoad(buf)
	}
}

// JournalAlloc threads an allocation service call through the executing
// chunk's replay cache: a replay reuses the address the crashed attempt
// obtained instead of running alloc (the allocator's bump cursor is not
// part of the effect transaction, and peers may hold committed writes
// behind the original address). Live attempts run alloc and record the
// result. Calls alloc directly when the executing chunk is not journaled.
func (w *Worker) JournalAlloc(alloc func() uint64) uint64 {
	if rec := w.curRec; rec != nil {
		return rec.journalAlloc(alloc)
	}
	return alloc()
}

// Spawn sends a spawn message for chunkID to the worker of colorIdx in the
// same thread (§7.3.2). The completion Done is routed back to the caller.
func (w *Worker) Spawn(colorIdx int, chunkID int, args []any, needReply bool) {
	rt := w.Thread.RT
	if rec := w.curRec; rec != nil && rec.suppressSpawn() {
		// A previous attempt of this chunk already issued this nested
		// spawn; it is either still in flight or already consumed. A
		// fresh copy would execute the nested chunk a second time.
		rt.trace(obs.EvSuppressSpawn, w.Index, chunkID, 0, w.epochNow(), 0)
		return
	}
	if rt.Recovery.Enabled() {
		// Journal before sending: if the chunk aborts, the spawn is
		// replayed from exactly these arguments. Every spawn is journaled,
		// not just needs-reply ones — the partitioner joins every spawn it
		// emits (the completion is the chunk barrier even when the payload
		// is unused), so every spawn's abort reaches a joiner and must be
		// replayable.
		rt.recordSpawn(w.Thread, colorIdx, chunkID, args, w, needReply)
	}
	target := w.Thread.Worker(colorIdx)
	rt.send(w, target, Message{
		Kind: MsgSpawn, ChunkID: chunkID, Args: args,
		NeedReply: needReply, ReplyTo: w,
	})
}

// SendCont sends a Free value to the worker of colorIdx in the same thread
// (the cont message of §7.3.2), tagged with its wait point.
func (w *Worker) SendCont(colorIdx int, tag int, payload any) {
	if rec := w.curRec; rec != nil && rec.suppressSend() {
		// A previous attempt of this chunk already delivered this cont;
		// the peer consumed it. Re-sending would stamp a fresh strSeq
		// (the admit gate would accept it) and the copy could satisfy a
		// *later* wait on the same tag — so the replay stays silent.
		w.Thread.RT.trace(obs.EvSuppressCont, w.Index, 0, tag, w.epochNow(), 0)
		return
	}
	w.Thread.RT.send(w, w.Thread.Worker(colorIdx), Message{Kind: MsgCont, Payload: payload, Tag: tag})
}

// window resolves the default supervision inactivity window (0 = block
// forever, the unsupervised behavior). The window bounds *quiescence*,
// not total time: any admitted message anywhere in the runtime restarts
// it, so a long protocol that keeps making progress — even on workers
// other than the blocked one — never times out, while a genuine loss or
// deadlock quiesces the whole runtime and fails within one window.
// Rejected (forged/stale/duplicate) messages do not restart it — a
// hostile flood cannot suppress the timeout.
func (w *Worker) window() time.Duration {
	return w.Thread.RT.Supervise.WaitTimeout
}

// nextDeadline starts (or restarts) the inactivity window.
func nextDeadline(window time.Duration) time.Time {
	if window > 0 {
		return time.Now().Add(window)
	}
	return time.Time{}
}

// Wait blocks until the cont message with the given tag arrives and
// returns its payload, executing any spawn messages that arrive in the
// meantime (this is what lets Figure 7's main.U run g.U between its two
// waits). Conts with other tags are buffered for their own wait points.
//
// Under supervision (Runtime.Supervise.WaitTimeout > 0) a lost cont turns
// into a *TimeoutError once no authentic message arrives for a full
// window; a stop message turns into ErrStopped instead of a panic.
func (w *Worker) Wait(tag int) (any, error) { return w.waitTag(tag, w.window()) }

// WaitTimeout is Wait with an explicit inactivity window overriding the
// configured supervision default.
func (w *Worker) WaitTimeout(tag int, d time.Duration) (any, error) {
	return w.waitTag(tag, d)
}

func (w *Worker) waitTag(tag int, window time.Duration) (any, error) {
	rt := w.Thread.RT
	rt.trace(obs.EvWait, w.Index, 0, tag, w.epochNow(), 0)
	w.prunePending()
	// A replayed chunk re-consumes conts its crashed attempt already took;
	// the peer will not send them again, so the journal cache serves them.
	if rec := w.curRec; rec != nil {
		if msg, ok := rec.cachedCont(tag); ok {
			rt.trace(obs.EvReplayCachedCont, w.Index, 0, tag, w.epochNow(), 0)
			return msg.Payload, nil
		}
	}
	for i, msg := range w.pendingCont {
		if msg.Tag == tag {
			w.pendingCont = append(w.pendingCont[:i], w.pendingCont[i+1:]...)
			if rec := w.curRec; rec != nil {
				rec.recordContIn(msg)
			}
			return msg.Payload, nil
		}
	}
	// Before blocking, give buffered completions their recovery pass: a
	// poisoned Done parked by loop() while no joiner was active may belong
	// to the very chunk whose replay is the only sender of this tag — the
	// join-side retry in joinOne/joinN never runs if the protocol waits
	// before it joins. handleDone swallows retried aborts; everything else
	// stays buffered for the eventual join (commits are idempotent).
	if len(w.pendingDone) > 0 {
		kept := w.pendingDone[:0]
		for _, msg := range w.pendingDone {
			if !w.handleDone(msg) {
				kept = append(kept, msg)
			}
		}
		w.pendingDone = kept
	}
	start := time.Now()
	w.publishBlock("wait", tag, start)
	defer w.clearBlock()
	for {
		msg, ok := w.next(nextDeadline(window))
		if !ok {
			if w.Thread.RT.sysActiveWithin(window) {
				continue // the system is alive; only our queue is quiet
			}
			rt.stats.timeouts.Add(1)
			err := &TimeoutError{Op: "wait", Worker: w.Index, Tag: tag, Elapsed: time.Since(start)}
			rt.trace(obs.EvTimeout, w.Index, 0, tag, w.epochNow(), err.Elapsed.Microseconds())
			w.Thread.timeoutDiag(err)
			return nil, err
		}
		switch msg.Kind {
		case MsgCont:
			if msg.Tag == tag {
				if rec := w.curRec; rec != nil {
					rec.recordContIn(msg)
				}
				if rt.hWaitUS != nil {
					// Block duration from the admit stamp next() already
					// took — no clock read on the satisfied-wait path.
					if d := (w.admitNS - start.UnixNano()) / 1e3; d >= 0 {
						rt.hWaitUS.Observe(d)
					}
				}
				return msg.Payload, nil
			}
			w.pendingCont = append(w.pendingCont, msg)
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgDone:
			if w.handleDone(msg) {
				continue
			}
			w.pendingDone = append(w.pendingDone, msg)
		case msgStop:
			w.stopping = true
			return nil, ErrStopped
		}
	}
}

// handleDone gives the recovery layer first refusal on a consumed
// completion: a successful Done commits its journal entry (and is then
// delivered normally, so false), a poisoned Done whose spawn still has
// attempt budget is swallowed and the spawn replayed (true — the caller
// keeps waiting for the replacement completion).
func (w *Worker) handleDone(msg Message) bool {
	rt := w.Thread.RT
	if !rt.Recovery.Enabled() {
		return false
	}
	if msg.Err == nil {
		rt.completeSpawn(w.Thread, msg.From, msg.ChunkID)
		return false
	}
	if abort, ok := msg.Err.(*EnclaveAbort); ok && rt.retrySpawn(w, abort) {
		return true
	}
	return false
}

// timeoutDiag fills a TimeoutError's diagnostic fields: per-worker queue
// depths and the set of cont tags the thread's workers were blocked on.
func (t *Thread) timeoutDiag(te *TimeoutError) {
	t.wmu.RLock()
	workers := append([]*Worker(nil), t.Workers...)
	t.wmu.RUnlock()
	te.QueueDepths = make([]int64, len(workers))
	tags := map[int]bool{}
	if te.Op == "wait" {
		tags[te.Tag] = true
	}
	for i, w := range workers {
		te.QueueDepths[i] = w.q.Depth()
		if bi := w.block.Load(); bi != nil && bi.op == "wait" {
			tags[bi.tag] = true
		}
	}
	for tag := range tags {
		te.PendingTags = append(te.PendingTags, tag)
	}
	sort.Ints(te.PendingTags)
	te.flight = t.RT.flightDump()
}

// JoinOne waits for a single spawn completion and returns the whole Done
// message (the interface versions of §7.3.4 need the sender identity to
// pick the chunk carrying the return color; a poisoned completion carries
// its abort in Message.Err). Spawns arriving in the meantime are executed;
// conts are buffered.
func (w *Worker) JoinOne() (Message, error) { return w.joinOne(w.window()) }

// JoinOneTimeout is JoinOne with an explicit inactivity window.
func (w *Worker) JoinOneTimeout(d time.Duration) (Message, error) {
	return w.joinOne(d)
}

func (w *Worker) joinOne(window time.Duration) (Message, error) {
	w.prunePending()
	// A replayed chunk re-joins completions its crashed attempt already
	// consumed; the nested chunk will not complete again, so the journal
	// cache serves them.
	if rec := w.curRec; rec != nil {
		if msg, ok := rec.cachedDone(); ok {
			w.Thread.RT.trace(obs.EvReplayCachedDone, w.Index, msg.ChunkID, 0, w.epochNow(), 0)
			return msg, nil
		}
	}
	// Buffered completions may include poisoned ones parked by loop()
	// that recovery has not seen yet, so pops go through handleDone too.
	for len(w.pendingDone) > 0 {
		msg := w.pendingDone[0]
		w.pendingDone = w.pendingDone[1:]
		if w.handleDone(msg) {
			continue
		}
		if rec := w.curRec; rec != nil {
			rec.recordDoneIn(msg)
		}
		return msg, nil
	}
	start := time.Now()
	w.publishBlock("join-one", 0, start)
	defer w.clearBlock()
	for {
		msg, ok := w.next(nextDeadline(window))
		if !ok {
			if w.Thread.RT.sysActiveWithin(window) {
				continue
			}
			w.Thread.RT.stats.timeouts.Add(1)
			err := &TimeoutError{Op: "join-one", Worker: w.Index, Pending: 1, Elapsed: time.Since(start)}
			w.Thread.RT.trace(obs.EvTimeout, w.Index, 0, 0, w.epochNow(), err.Elapsed.Microseconds())
			w.Thread.timeoutDiag(err)
			return Message{}, err
		}
		switch msg.Kind {
		case MsgDone:
			if w.handleDone(msg) {
				continue
			}
			if rec := w.curRec; rec != nil {
				rec.recordDoneIn(msg)
			}
			return msg, nil
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgCont:
			w.pendingCont = append(w.pendingCont, msg)
		case msgStop:
			w.stopping = true
			return Message{}, ErrStopped
		}
	}
}

// Join waits for n spawn completions and returns the payload of the last
// non-nil one (the partitioner arranges for at most one meaningful result).
// Spawn messages arriving in the meantime are executed. If a completion is
// poisoned (the chunk aborted), Join keeps collecting the remaining
// completions and then reports the first abort.
func (w *Worker) Join(n int) (any, error) { return w.joinN(n, w.window()) }

// JoinTimeout is Join with an explicit inactivity window.
func (w *Worker) JoinTimeout(n int, d time.Duration) (any, error) {
	return w.joinN(n, d)
}

func (w *Worker) joinN(n int, window time.Duration) (any, error) {
	w.Thread.RT.trace(obs.EvJoin, w.Index, 0, 0, w.epochNow(), int64(n))
	w.prunePending()
	var result any
	var firstErr error
	take := func(msg Message) {
		if msg.Err != nil && firstErr == nil {
			firstErr = msg.Err
		}
		if msg.Payload != nil {
			result = msg.Payload
		}
	}
	// Serve the replay cache first (see joinOne).
	if rec := w.curRec; rec != nil {
		for n > 0 {
			msg, ok := rec.cachedDone()
			if !ok {
				break
			}
			w.Thread.RT.trace(obs.EvReplayCachedDone, w.Index, msg.ChunkID, 0, w.epochNow(), 0)
			take(msg)
			n--
		}
	}
	for n > 0 && len(w.pendingDone) > 0 {
		msg := w.pendingDone[0]
		w.pendingDone = w.pendingDone[1:]
		if w.handleDone(msg) {
			continue
		}
		if rec := w.curRec; rec != nil {
			rec.recordDoneIn(msg)
		}
		take(msg)
		n--
	}
	start := time.Now()
	w.publishBlock("join", n, start)
	defer w.clearBlock()
	for n > 0 {
		msg, ok := w.next(nextDeadline(window))
		if !ok {
			if w.Thread.RT.sysActiveWithin(window) {
				continue
			}
			w.Thread.RT.stats.timeouts.Add(1)
			err := &TimeoutError{Op: "join", Worker: w.Index, Pending: n, Elapsed: time.Since(start)}
			w.Thread.RT.trace(obs.EvTimeout, w.Index, 0, 0, w.epochNow(), err.Elapsed.Microseconds())
			w.Thread.timeoutDiag(err)
			return result, err
		}
		switch msg.Kind {
		case MsgDone:
			if w.handleDone(msg) {
				continue
			}
			if rec := w.curRec; rec != nil {
				rec.recordDoneIn(msg)
			}
			take(msg)
			n--
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgCont:
			w.pendingCont = append(w.pendingCont, msg)
		case msgStop:
			w.stopping = true
			return result, ErrStopped
		}
	}
	return result, firstErr
}
