// Package prt is the Privagic runtime (paper §5, §7.3): it runs one worker
// thread per (application thread × enclave), each with a communication
// channel implemented as a lock-free FIFO queue stored in unsafe memory,
// and provides the spawn message, the cont message, and the wait function
// that the partitioned code uses (§7.3.2).
//
// Enclave workers live inside their enclave (the FastSGX model [40]): a
// message hop costs one queue round trip, not an enclave transition —
// which is precisely why the paper's Figure 9 shows Privagic beating the
// Intel SDK's lock-based switchless calls.
package prt

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"privagic/internal/queue"
	"privagic/internal/sgx"
)

// traceEnabled turns on message tracing via the PRT_TRACE environment
// variable (debugging aid for generated-protocol issues).
var traceEnabled = os.Getenv("PRT_TRACE") != ""

func tracef(format string, args ...any) {
	if traceEnabled {
		fmt.Fprintf(os.Stderr, "prt: "+format+"\n", args...)
	}
}

// MsgKind discriminates runtime messages.
type MsgKind int

// Message kinds: Spawn starts a chunk on the receiving worker; Cont carries
// a Free value to a waiting chunk; Done is a spawn-completion notification
// carrying the chunk's return value.
const (
	MsgSpawn MsgKind = iota + 1
	MsgCont
	MsgDone
	msgStop
)

// Message is one element of a worker's lock-free channel.
type Message struct {
	Kind MsgKind
	// Spawn fields.
	ChunkID   int
	Args      []any
	NeedReply bool
	ReplyTo   *Worker
	// Cont/Done payload.
	Payload any
	// From is the color index of the sending worker (set on Done).
	From int
	// Tag matches a cont message with its wait point. Two producers
	// sending to the same consumer are only ordered through causality,
	// which goroutine scheduling can break; the static tag (assigned
	// per transport by the partitioner) makes delivery order-free.
	Tag int
}

// ChunkExec executes the body of a chunk; the interpreter and the native
// benchmark harness plug in here. It runs on the worker's goroutine with
// the worker's enclave as the active mode.
type ChunkExec func(w *Worker, chunkID int, args []any) any

// Runtime owns the enclaves and cost accounting of one partitioned
// application execution.
type Runtime struct {
	Machine *sgx.Machine
	Meter   *sgx.Meter
	Space   *sgx.AddressSpace
	Colors  []string // enclave names; index i -> region ID i+1
	Exec    ChunkExec

	// ValidateSpawn, when set, is consulted inside the enclave before a
	// spawn message is honored (the §8 future-work defense against
	// attacker-injected spawns): return false to reject. The check runs
	// in enclave mode, so the whitelist itself is tamper-proof.
	ValidateSpawn func(workerIdx, chunkID int) bool

	rejectedSpawns atomic.Int64

	mu      sync.Mutex
	threads []*Thread
}

// RejectedSpawns reports how many spawn messages validation refused.
func (rt *Runtime) RejectedSpawns() int64 { return rt.rejectedSpawns.Load() }

// New creates a runtime with one enclave region per color.
func New(m *sgx.Machine, colors []string, exec ChunkExec) *Runtime {
	return &Runtime{
		Machine: m,
		Meter:   &sgx.Meter{},
		Space:   sgx.NewAddressSpace(colors...),
		Colors:  colors,
		Exec:    exec,
	}
}

// RegionOf maps a color index (0 = unsafe) to its region.
func (rt *Runtime) RegionOf(colorIdx int) sgx.RegionID {
	return sgx.RegionID(colorIdx)
}

// Worker is the execution context bound to one enclave (or to normal mode
// for index 0) within one application thread.
type Worker struct {
	Thread *Thread
	Index  int // 0 = normal mode; i>0 = enclave i
	Mode   sgx.Mode

	q *queue.Queue[Message]
	// pending buffers messages received while waiting for a different
	// kind.
	pendingCont []Message
	pendingDone []Message
	stopped     chan struct{}
}

// Thread models one application thread: the normal-mode context plus one
// worker goroutine per enclave ("for each thread of the application,
// Privagic runs one worker thread per enclave", §8).
type Thread struct {
	RT      *Runtime
	Workers []*Worker // index 0 is the app thread itself (normal mode)
	wg      sync.WaitGroup
}

// NewThread creates the workers of one application thread and starts the
// enclave goroutines.
func (rt *Runtime) NewThread() *Thread {
	t := &Thread{RT: rt}
	for i := 0; i <= len(rt.Colors); i++ {
		w := &Worker{
			Thread:  t,
			Index:   i,
			Mode:    rt.RegionOf(i),
			q:       queue.New[Message](),
			stopped: make(chan struct{}),
		}
		t.Workers = append(t.Workers, w)
	}
	for _, w := range t.Workers[1:] {
		t.wg.Add(1)
		go w.loop(&t.wg)
		// Starting a worker inside an enclave costs one transition.
		rt.Meter.ChargeTransition(&rt.Machine.Cost)
	}
	rt.mu.Lock()
	rt.threads = append(rt.threads, t)
	rt.mu.Unlock()
	return t
}

// Close stops the thread's enclave workers and waits for them to exit.
func (t *Thread) Close() {
	for _, w := range t.Workers[1:] {
		w.q.Enqueue(Message{Kind: msgStop})
	}
	t.wg.Wait()
}

// Normal returns the normal-mode context of the thread.
func (t *Thread) Normal() *Worker { return t.Workers[0] }

// Worker returns the worker bound to colorIdx (0 = normal mode).
func (t *Thread) Worker(colorIdx int) *Worker { return t.Workers[colorIdx] }

// loop is the top-level scheduler of an enclave worker: it executes spawn
// messages forever (Figure 7's "wait()" at the top of each enclave column).
func (w *Worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(w.stopped)
	for {
		msg := w.q.DequeueBlock()
		switch msg.Kind {
		case msgStop:
			return
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgCont, MsgDone:
			// A message for a chunk that is not running. With
			// correct generated code this cannot happen; after a
			// chunk crashed mid-protocol (and was recovered by the
			// executor) its peers' leftover messages land here, so
			// dropping them keeps the worker alive for the next
			// request.
			continue
		}
	}
}

// runSpawn executes a spawned chunk and reports completion.
func (w *Worker) runSpawn(msg Message) {
	tracef("w%d run spawn chunk=%d", w.Index, msg.ChunkID)
	rt := w.Thread.RT
	if rt.ValidateSpawn != nil && !rt.ValidateSpawn(w.Index, msg.ChunkID) {
		rt.rejectedSpawns.Add(1)
		if msg.ReplyTo != nil {
			// Still complete the join so legitimate peers cannot be
			// deadlocked by a rejected injection racing a real spawn.
			rt.send(msg.ReplyTo, Message{Kind: MsgDone, From: w.Index})
		}
		return
	}
	ret := rt.Exec(w, msg.ChunkID, msg.Args)
	if msg.ReplyTo != nil {
		w.Thread.RT.send(msg.ReplyTo, Message{Kind: MsgDone, Payload: ret, From: w.Index})
	}
}

// send enqueues a message, charging one queue hop.
func (rt *Runtime) send(to *Worker, msg Message) {
	tracef("send -> w%d kind=%d chunk=%d tag=%d", to.Index, msg.Kind, msg.ChunkID, msg.Tag)
	rt.Meter.ChargeMessage(&rt.Machine.Cost)
	to.q.Enqueue(msg)
}

// Spawn sends a spawn message for chunkID to the worker of colorIdx in the
// same thread (§7.3.2). The completion Done is routed back to the caller.
func (w *Worker) Spawn(colorIdx int, chunkID int, args []any, needReply bool) {
	target := w.Thread.Worker(colorIdx)
	w.Thread.RT.send(target, Message{
		Kind: MsgSpawn, ChunkID: chunkID, Args: args,
		NeedReply: needReply, ReplyTo: w,
	})
}

// SendCont sends a Free value to the worker of colorIdx in the same thread
// (the cont message of §7.3.2), tagged with its wait point.
func (w *Worker) SendCont(colorIdx int, tag int, payload any) {
	w.Thread.RT.send(w.Thread.Worker(colorIdx), Message{Kind: MsgCont, Payload: payload, Tag: tag})
}

// Wait blocks until the cont message with the given tag arrives and
// returns its payload, executing any spawn messages that arrive in the
// meantime (this is what lets Figure 7's main.U run g.U between its two
// waits). Conts with other tags are buffered for their own wait points.
func (w *Worker) Wait(tag int) any {
	tracef("w%d wait tag=%d", w.Index, tag)
	for i, msg := range w.pendingCont {
		if msg.Tag == tag {
			w.pendingCont = append(w.pendingCont[:i], w.pendingCont[i+1:]...)
			return msg.Payload
		}
	}
	for {
		msg := w.q.DequeueBlock()
		switch msg.Kind {
		case MsgCont:
			if msg.Tag == tag {
				return msg.Payload
			}
			w.pendingCont = append(w.pendingCont, msg)
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgDone:
			w.pendingDone = append(w.pendingDone, msg)
		case msgStop:
			panic("prt: worker stopped while waiting for cont")
		}
	}
}

// JoinOne waits for a single spawn completion and returns the whole Done
// message (the interface versions of §7.3.4 need the sender identity to
// pick the chunk carrying the return color). Spawns arriving in the
// meantime are executed; conts are buffered.
func (w *Worker) JoinOne() Message {
	if len(w.pendingDone) > 0 {
		msg := w.pendingDone[0]
		w.pendingDone = w.pendingDone[1:]
		return msg
	}
	for {
		msg := w.q.DequeueBlock()
		switch msg.Kind {
		case MsgDone:
			return msg
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgCont:
			w.pendingCont = append(w.pendingCont, msg)
		case msgStop:
			panic("prt: worker stopped while joining")
		}
	}
}

// Join waits for n spawn completions and returns the payload of the last
// non-nil one (the partitioner arranges for at most one meaningful result).
// Spawn messages arriving in the meantime are executed.
func (w *Worker) Join(n int) any {
	tracef("w%d join n=%d", w.Index, n)
	var result any
	take := func(msg Message) {
		if msg.Payload != nil {
			result = msg.Payload
		}
	}
	for n > 0 && len(w.pendingDone) > 0 {
		take(w.pendingDone[0])
		w.pendingDone = w.pendingDone[1:]
		n--
	}
	for n > 0 {
		msg := w.q.DequeueBlock()
		switch msg.Kind {
		case MsgDone:
			take(msg)
			n--
		case MsgSpawn:
			w.runSpawn(msg)
		case MsgCont:
			w.pendingCont = append(w.pendingCont, msg)
		case msgStop:
			panic("prt: worker stopped while joining")
		}
	}
	return result
}
