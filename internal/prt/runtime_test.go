package prt

import (
	"sync/atomic"
	"testing"

	"privagic/internal/sgx"
)

// testRT builds a runtime whose Exec is a dispatch table of chunk bodies.
func testRT(t *testing.T, colors []string, chunks map[int]func(w *Worker, args []any) any) *Runtime {
	t.Helper()
	rt := New(sgx.MachineB(), colors, func(w *Worker, chunkID int, args []any) any {
		fn := chunks[chunkID]
		if fn == nil {
			t.Errorf("spawned unknown chunk %d", chunkID)
			return nil
		}
		return fn(w, args)
	})
	return rt
}

// TestSpawnJoin checks the basic §7.3.2 protocol: a normal-mode caller
// spawns a chunk into an enclave worker and joins its completion.
func TestSpawnJoin(t *testing.T) {
	var ran atomic.Int32
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			ran.Add(1)
			return args[0].(int) * 2
		},
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, []any{21}, true)
	got, err := u.Join(1)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if got != 42 {
		t.Errorf("Join = %v, want 42", got)
	}
	if ran.Load() != 1 {
		t.Errorf("chunk ran %d times", ran.Load())
	}
	if u.Mode != sgx.Unsafe {
		t.Error("normal context has wrong mode")
	}
	if th.Worker(1).Mode != 1 {
		t.Error("enclave worker has wrong mode")
	}
}

// TestContDelivery checks cont message payload delivery with tags.
func TestContDelivery(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			// The enclave chunk sends a tagged value back to normal
			// mode, then returns.
			w.SendCont(0, 7, "payload")
			return nil
		},
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if got, err := u.Wait(7); err != nil || got != "payload" {
		t.Errorf("Wait(7) = %v, %v", got, err)
	}
	if _, err := u.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
}

// TestTaggedWaitsAreOrderFree reproduces the race the tags exist for: two
// producers send differently-tagged conts to the same consumer in an
// arbitrary order; each wait still receives its own value.
func TestTaggedWaitsAreOrderFree(t *testing.T) {
	rt := testRT(t, []string{"blue", "red"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { // blue
			w.SendCont(0, 100, "from-blue")
			return nil
		},
		2: func(w *Worker, args []any) any { // red
			w.SendCont(0, 200, "from-red")
			return nil
		},
	})
	for i := 0; i < 50; i++ {
		th := rt.NewThread()
		u := th.Normal()
		u.Spawn(1, 1, nil, true)
		u.Spawn(2, 2, nil, true)
		// Consume in the opposite order of a possible arrival order.
		red, errR := u.Wait(200)
		blue, errB := u.Wait(100)
		if errR != nil || errB != nil {
			t.Fatalf("Wait errors: %v / %v", errR, errB)
		}
		if red != "from-red" || blue != "from-blue" {
			t.Fatalf("tag routing failed: %v / %v", red, blue)
		}
		if _, err := u.Join(2); err != nil {
			t.Fatalf("Join: %v", err)
		}
		th.Close()
	}
}

// TestWaitExecutesSpawns checks the Figure 7 semantics: a worker blocked in
// wait() runs spawn messages that arrive in the meantime (main.U runs g.U
// between its two waits).
func TestWaitExecutesSpawns(t *testing.T) {
	var nested atomic.Int32
	var rt *Runtime
	rt = testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			// Enclave chunk: first make normal mode run a nested
			// chunk, then unblock it.
			w.Thread.Normal().enqueueSpawnForTest(2, w)
			w.SendCont(0, 5, 99)
			return nil
		},
		2: func(w *Worker, args []any) any {
			nested.Add(1)
			return nil
		},
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if got, err := u.Wait(5); err != nil || got != 99 {
		t.Errorf("Wait = %v, %v", got, err)
	}
	if nested.Load() != 1 {
		t.Error("nested spawn did not run inside Wait")
	}
	if _, err := u.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
}

// enqueueSpawnForTest lets a test route a spawn at a specific worker.
func (w *Worker) enqueueSpawnForTest(chunkID int, from *Worker) {
	w.Thread.RT.send(from, w, Message{Kind: MsgSpawn, ChunkID: chunkID, ReplyTo: nil})
}

// TestJoinOneCarriesSender checks the From field the interface versions
// use to pick the chunk carrying the return color.
func TestJoinOneCarriesSender(t *testing.T) {
	rt := testRT(t, []string{"blue", "red"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return "blue-result" },
		2: func(w *Worker, args []any) any { return "red-result" },
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	u.Spawn(2, 2, nil, true)
	got := map[int]any{}
	for i := 0; i < 2; i++ {
		msg, err := u.JoinOne()
		if err != nil {
			t.Fatalf("JoinOne: %v", err)
		}
		got[msg.From] = msg.Payload
	}
	if got[1] != "blue-result" || got[2] != "red-result" {
		t.Errorf("JoinOne senders wrong: %v", got)
	}
}

// TestMessageCostAccounting checks that every hop charges the meter.
func TestMessageCostAccounting(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return nil },
	})
	th := rt.NewThread()
	defer th.Close()
	before, _, _, _ := rt.Meter.Counts()
	_ = before
	_, msgBefore, _, _ := rt.Meter.Counts()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if _, err := u.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
	_, msgAfter, _, _ := rt.Meter.Counts()
	if msgAfter-msgBefore != 2 { // spawn + done
		t.Errorf("messages charged = %d, want 2", msgAfter-msgBefore)
	}
}

// TestParallelThreads checks thread isolation: each application thread has
// its own workers and queues (paper §8: one worker per thread per enclave).
func TestParallelThreads(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return args[0] },
	})
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			th := rt.NewThread()
			defer th.Close()
			u := th.Normal()
			for j := 0; j < 100; j++ {
				u.Spawn(1, 1, []any{i*1000 + j}, true)
				got, err := u.Join(1)
				if err != nil {
					t.Errorf("thread %d: Join error: %v", i, err)
					done <- false
					return
				}
				if got != i*1000+j {
					t.Errorf("thread %d: Join = %v", i, got)
					done <- false
					return
				}
			}
			done <- true
		}(i)
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("a thread failed")
		}
	}
}
