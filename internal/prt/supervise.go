package prt

import (
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/obs"
)

// Supervision configures the runtime's fault-tolerance layer. The zero
// value disables everything, reproducing the paper's trusting runtime.
type Supervision struct {
	// WaitTimeout is the inactivity window of every Wait/Join/JoinOne: a
	// blocked worker gives up once the whole runtime has admitted no
	// authentic message for this long, returning a *TimeoutError instead
	// of hanging on a lost message. Admitted traffic on any worker
	// restarts the window (a long protocol that keeps making progress
	// never trips it); rejected forgeries do not. 0 = block forever.
	WaitTimeout time.Duration
	// Watchdog starts a per-runtime supervisor goroutine that observes
	// blocked workers and records which tag/join they are stuck on once
	// they exceed the deadline (diagnosing hangs the timeouts cannot
	// reach, e.g. blocking calls issued with WaitTimeout 0).
	Watchdog bool
	// WatchdogInterval is the sampling period (default 10ms).
	WatchdogInterval time.Duration
	// QueueCapacity bounds every worker queue created after it is set
	// (0 = unbounded, the paper's model). A full queue blocks the
	// producer inside rt.send — end-to-end backpressure instead of
	// unbounded growth; Runtime.Saturated exposes the pressure to
	// admission control upstream.
	QueueCapacity int
	// RestartStuck escalates a watchdog stall report on an enclave
	// worker into Thread.RestartWorker: tear down, fresh epoch, replay.
	// Requires Recovery to be enabled for the replay half to run.
	RestartStuck bool
}

// supCounters aggregates the hostile-message and failure counters of one
// runtime (the "alongside RejectedSpawns" surface of the robustness work).
type supCounters struct {
	rejectedSpawns    atomic.Int64
	rejectedConts     atomic.Int64
	hostileSpawns     atomic.Int64
	hostileConts      atomic.Int64
	hostileOther      atomic.Int64
	droppedStale      atomic.Int64
	droppedDuplicates atomic.Int64
	aborts            atomic.Int64
	timeouts          atomic.Int64
	drained           atomic.Int64
	restarts          atomic.Int64
	redelivered       atomic.Int64
	backpressure      atomic.Int64
	payloadTampered   atomic.Int64

	stallMu sync.Mutex
	stalls  []Stall
}

// SupStats is a snapshot of the supervision counters.
type SupStats struct {
	// RejectedSpawns counts spawn messages the ValidateSpawn whitelist
	// refused; RejectedConts counts cont messages with unallocated tags.
	RejectedSpawns int64
	RejectedConts  int64
	// HostileSpawns/Conts/Other count forged messages (missing auth
	// stamp) rejected at the admit gate, by kind.
	HostileSpawns int64
	HostileConts  int64
	HostileOther  int64
	// DroppedStale counts stragglers of older epochs; DroppedDuplicates
	// counts replayed sequence numbers.
	DroppedStale      int64
	DroppedDuplicates int64
	// Aborts counts chunks that crashed and were converted into
	// poisoned completions; Timeouts counts waits that gave up;
	// Drained counts leftover messages discarded by Thread.Close.
	Aborts   int64
	Timeouts int64
	Drained  int64
	// Stalls counts watchdog reports (details via Runtime.Stalls).
	Stalls int64
	// PayloadTampered counts messages rejected at the admit gate because
	// their payload integrity tag no longer matched their contents — the
	// in-place queue mutations the auth stamp alone cannot see (requires
	// Runtime.PayloadTags).
	PayloadTampered int64
}

// HostileTotal is the total number of forged messages rejected.
func (s SupStats) HostileTotal() int64 { return s.HostileSpawns + s.HostileConts + s.HostileOther }

// SupervisionStats snapshots the runtime's robustness counters.
func (rt *Runtime) SupervisionStats() SupStats {
	c := &rt.stats
	c.stallMu.Lock()
	nStalls := int64(len(c.stalls))
	c.stallMu.Unlock()
	return SupStats{
		RejectedSpawns:    c.rejectedSpawns.Load(),
		RejectedConts:     c.rejectedConts.Load(),
		HostileSpawns:     c.hostileSpawns.Load(),
		HostileConts:      c.hostileConts.Load(),
		HostileOther:      c.hostileOther.Load(),
		DroppedStale:      c.droppedStale.Load(),
		DroppedDuplicates: c.droppedDuplicates.Load(),
		Aborts:            c.aborts.Load(),
		Timeouts:          c.timeouts.Load(),
		Drained:           c.drained.Load(),
		Stalls:            nStalls,
		PayloadTampered:   c.payloadTampered.Load(),
	}
}

// Stall is one watchdog observation: a worker blocked past its deadline,
// with the wait point it is stuck on.
type Stall struct {
	Worker  int    // color index of the blocked worker
	Op      string // "wait", "join", "join-one"
	Tag     int    // cont tag (Op == "wait") or completions pending
	Blocked time.Duration
}

// Stalls returns the watchdog's reports so far.
func (rt *Runtime) Stalls() []Stall {
	rt.stats.stallMu.Lock()
	defer rt.stats.stallMu.Unlock()
	return append([]Stall(nil), rt.stats.stalls...)
}

// blockInfo is the state a worker publishes while blocked in a wait
// primitive, consumed by the watchdog.
type blockInfo struct {
	op       string
	tag      int
	since    time.Time
	reported atomic.Bool
}

// publishBlock is always on (not gated on the watchdog): timeout
// diagnostics read the published wait points of sibling workers to name
// the pending tags in a TimeoutError.
func (w *Worker) publishBlock(op string, tag int, since time.Time) {
	w.block.Store(&blockInfo{op: op, tag: tag, since: since})
}

func (w *Worker) clearBlock() {
	w.block.Store(nil)
}

// maybeStartWatchdog starts the supervisor goroutine once, if configured.
func (rt *Runtime) maybeStartWatchdog() {
	if !rt.Supervise.Watchdog {
		return
	}
	rt.watchdogOnce.Do(func() {
		rt.watchdogStop = make(chan struct{})
		go rt.watchdog()
	})
}

// watchdog samples every worker's published block state and records a
// stall the first time a block exceeds the deadline. It reports which
// tag/join the worker is stuck on — the diagnostic half of supervision
// (the timeout variants are the recovery half).
func (rt *Runtime) watchdog() {
	interval := rt.Supervise.WatchdogInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	threshold := rt.Supervise.WaitTimeout
	if threshold <= 0 {
		threshold = 4 * interval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.watchdogStop:
			return
		case <-ticker.C:
		}
		rt.mu.Lock()
		threads := append([]*Thread(nil), rt.threads...)
		rt.mu.Unlock()
		now := time.Now()
		for _, t := range threads {
			t.wmu.RLock()
			workers := append([]*Worker(nil), t.Workers...)
			t.wmu.RUnlock()
			for _, w := range workers {
				bi := w.block.Load()
				if bi == nil {
					continue
				}
				blocked := now.Sub(bi.since)
				if blocked < threshold || !bi.reported.CompareAndSwap(false, true) {
					continue
				}
				rt.trace(obs.EvStall, w.Index, 0, bi.tag, t.epoch.Load(), blocked.Microseconds())
				rt.stats.stallMu.Lock()
				if len(rt.stats.stalls) < 1024 {
					rt.stats.stalls = append(rt.stats.stalls, Stall{
						Worker: w.Index, Op: bi.op, Tag: bi.tag, Blocked: blocked,
					})
				}
				rt.stats.stallMu.Unlock()
				if rt.Supervise.RestartStuck && w.Index > 0 && !t.closed.Load() {
					// Escalate: a stuck enclave worker is torn down and
					// re-created, the epoch fences its stragglers, and
					// the journal replays its in-flight spawns.
					t.RestartWorker(w.Index)
				}
			}
		}
	}
}

// Saturated reports whether any bounded worker queue is at capacity —
// the signal admission control upstream (the memcached front-end) probes
// to start shedding load before producers block.
func (rt *Runtime) Saturated() bool {
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	for _, t := range threads {
		t.wmu.RLock()
		workers := append([]*Worker(nil), t.Workers...)
		t.wmu.RUnlock()
		for _, w := range workers {
			if c := w.q.Capacity(); c > 0 && w.q.Depth() >= c {
				return true
			}
		}
	}
	return false
}

// Shutdown closes every thread the runtime created and stops the watchdog.
// Safe to call more than once.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	for _, t := range threads {
		t.Close()
	}
	rt.shutdownOnce.Do(func() {
		if rt.watchdogStop != nil {
			close(rt.watchdogStop)
		}
	})
}
