package prt

import (
	"errors"
	"sync"
	"testing"
	"time"

	"privagic/internal/sgx"
)

// TestStopDuringWaitReturnsErrStopped checks the satellite fix: a worker
// blocked in Wait when Thread.Close fires gets a typed shutdown error, not
// a panic, so teardown during in-flight work is safe.
func TestStopDuringWaitReturnsErrStopped(t *testing.T) {
	errCh := make(chan error, 1)
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			_, err := w.Wait(42) // blocks: nobody ever sends tag 42
			errCh <- err
			return nil
		},
	})
	th := rt.NewThread()
	u := th.Normal()
	u.Spawn(1, 1, nil, false)
	time.Sleep(5 * time.Millisecond) // let the chunk reach its wait
	th.Close()                       // must not deadlock or panic
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("Wait during Close = %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chunk never unblocked")
	}
}

// TestAbortPropagatesToJoiner checks the simulated-AEX path: a panicking
// chunk becomes a poisoned Done carrying *EnclaveAbort instead of
// deadlocking the joiner forever.
func TestAbortPropagatesToJoiner(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { panic("enclave blew up") },
		2: func(w *Worker, args []any) any { return "ok" },
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	_, err := u.Join(1)
	if !errors.Is(err, ErrEnclaveAbort) {
		t.Fatalf("Join after crash = %v, want EnclaveAbort", err)
	}
	var abort *EnclaveAbort
	if !errors.As(err, &abort) || abort.ChunkID != 1 || abort.Worker != 1 {
		t.Fatalf("abort details wrong: %+v", abort)
	}
	// The worker survived the crash and serves the next request.
	u.Spawn(1, 2, nil, true)
	got, err := u.Join(1)
	if err != nil || got != "ok" {
		t.Fatalf("worker did not survive the abort: %v, %v", got, err)
	}
	if st := rt.SupervisionStats(); st.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", st.Aborts)
	}
}

// TestWaitTimeoutOnLostCont checks that a lost cont degrades into a typed
// timeout instead of a hang.
func TestWaitTimeoutOnLostCont(t *testing.T) {
	rt := testRT(t, []string{"blue"}, nil)
	rt.Supervise = Supervision{WaitTimeout: 20 * time.Millisecond}
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	start := time.Now()
	_, err := u.Wait(7)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait on lost cont = %v, want ErrWaitTimeout", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Tag != 7 || te.Op != "wait" {
		t.Fatalf("timeout details wrong: %+v", te)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout took %v", el)
	}
	if st := rt.SupervisionStats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestJoinTimeoutExplicit checks the explicit-deadline variant against a
// spawn whose completion never comes (dropped by an interceptor).
func TestJoinTimeoutExplicit(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return nil },
	})
	rt.SetInterceptor(dropKind{MsgDone})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	_, err := u.JoinTimeout(1, 20*time.Millisecond)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("JoinTimeout = %v, want ErrWaitTimeout", err)
	}
}

// dropKind is a test interceptor that swallows every message of one kind.
type dropKind struct{ kind MsgKind }

func (d dropKind) Deliver(to *Worker, msg Message) {
	if msg.Kind == d.kind {
		return
	}
	to.EnqueueRaw(msg)
}

// dupAll is a test interceptor that delivers every message twice — the
// replay attack / duplicating-transport case.
type dupAll struct{}

func (dupAll) Deliver(to *Worker, msg Message) {
	to.EnqueueRaw(msg)
	to.EnqueueRaw(msg)
}

// TestDuplicateSuppression checks that replayed messages are delivered
// exactly once: 50 spawn/join rounds under a duplicating transport still
// yield exactly one completion each.
func TestDuplicateSuppression(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return args[0] },
	})
	rt.SetInterceptor(dupAll{})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	for j := 0; j < 50; j++ {
		u.Spawn(1, 1, []any{j}, true)
		got, err := u.Join(1)
		if err != nil || got != j {
			t.Fatalf("round %d: Join = %v, %v", j, got, err)
		}
	}
	st := rt.SupervisionStats()
	if st.DroppedDuplicates == 0 {
		t.Error("no duplicates suppressed under a duplicating transport")
	}
}

// TestHostileMessagesRejected forges messages into the queues (no auth
// stamp) and checks they are counted and ignored while the legitimate
// protocol proceeds.
func TestHostileMessagesRejected(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return "real" },
	})
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	// Forge: a spawn at the enclave worker, a cont and a done at the
	// app thread (the injected-message surface of §8).
	th.Worker(1).DeliverHostile(Message{Kind: MsgSpawn, ChunkID: 999})
	u.DeliverHostile(Message{Kind: MsgCont, Tag: 1, Payload: "evil"})
	u.DeliverHostile(Message{Kind: MsgDone, Payload: "evil", From: 1})
	u.Spawn(1, 1, nil, true)
	got, err := u.Join(1)
	if err != nil || got != "real" {
		t.Fatalf("Join = %v, %v; forged done consumed?", got, err)
	}
	st := rt.SupervisionStats()
	if st.HostileSpawns != 1 || st.HostileConts != 1 || st.HostileOther != 1 {
		t.Errorf("hostile counters = %+v, want 1/1/1", st)
	}
}

// TestContTagValidation checks the ValidateCont whitelist: an
// authenticated cont with an unallocated tag is rejected and counted
// rather than parked forever in the pending buffer.
func TestContTagValidation(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			w.SendCont(0, 500, "bogus") // tag outside the whitelist
			w.SendCont(0, 3, "good")
			return nil
		},
	})
	rt.ValidateCont = func(tag int) bool { return tag <= 10 }
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if got, err := u.Wait(3); err != nil || got != "good" {
		t.Fatalf("Wait(3) = %v, %v", got, err)
	}
	if _, err := u.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if st := rt.SupervisionStats(); st.RejectedConts != 1 {
		t.Errorf("RejectedConts = %d, want 1", st.RejectedConts)
	}
}

// holdDones captures Done messages until released — simulating a transport
// that redelivers them much later (after the invocation moved on).
type holdDones struct {
	mu   sync.Mutex
	held []struct {
		to  *Worker
		msg Message
	}
}

func (h *holdDones) Deliver(to *Worker, msg Message) {
	if msg.Kind == MsgDone {
		h.mu.Lock()
		h.held = append(h.held, struct {
			to  *Worker
			msg Message
		}{to, msg})
		h.mu.Unlock()
		return
	}
	to.EnqueueRaw(msg)
}

func (h *holdDones) release() {
	h.mu.Lock()
	held := h.held
	h.held = nil
	h.mu.Unlock()
	for _, e := range held {
		e.to.EnqueueRaw(e.msg)
	}
}

// TestEpochFencesStaleMessages checks the cross-invocation staleness
// fence: a completion from invocation N delivered during invocation N+1 is
// discarded, not consumed as N+1's result.
func TestEpochFencesStaleMessages(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any { return args[0] },
	})
	ic := &holdDones{}
	rt.SetInterceptor(ic)
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()

	th.AdvanceEpoch()
	u.Spawn(1, 1, []any{"old"}, true)
	if _, err := u.JoinTimeout(1, 10*time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("expected timeout while the done is held, got %v", err)
	}

	// Next invocation: the stale done is released mid-flight.
	th.AdvanceEpoch()
	rt.SetInterceptor(nil)
	ic.release()
	u.Spawn(1, 1, []any{"new"}, true)
	got, err := u.Join(1)
	if err != nil || got != "new" {
		t.Fatalf("Join = %v, %v; stale completion leaked across epochs", got, err)
	}
	if st := rt.SupervisionStats(); st.DroppedStale == 0 {
		t.Error("stale message was not counted as dropped")
	}
}

// TestWatchdogReportsStall checks the diagnostic half of supervision: a
// worker blocked past the deadline is reported with the tag it is stuck on.
func TestWatchdogReportsStall(t *testing.T) {
	rt := testRT(t, []string{"blue"}, nil)
	rt.Supervise = Supervision{Watchdog: true, WatchdogInterval: 2 * time.Millisecond}
	th := rt.NewThread()
	defer func() { th.Close(); rt.Shutdown() }()
	u := th.Normal()
	done := make(chan struct{})
	go func() {
		defer close(done)
		u.Wait(77) // blocks until the cont below arrives
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.Stalls()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stalls := rt.Stalls()
	if len(stalls) == 0 {
		t.Fatal("watchdog never reported the blocked worker")
	}
	if s := stalls[0]; s.Op != "wait" || s.Tag != 77 || s.Worker != 0 {
		t.Errorf("stall = %+v, want wait on tag 77 at w0", s)
	}
	// Unblock and tear down.
	th.Worker(1).Thread.RT.send(th.Worker(1), u, Message{Kind: MsgCont, Tag: 77})
	<-done
}

// TestCloseDrainsLeftovers checks graceful shutdown: queue contents left
// by a crashed protocol are drained and counted, not leaked.
func TestCloseDrainsLeftovers(t *testing.T) {
	rt := testRT(t, []string{"blue"}, map[int]func(w *Worker, args []any) any{
		1: func(w *Worker, args []any) any {
			w.SendCont(0, 9, "never consumed")
			w.SendCont(0, 10, "never consumed")
			return nil
		},
	})
	th := rt.NewThread()
	u := th.Normal()
	u.Spawn(1, 1, nil, true)
	if _, err := u.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
	th.Close()
	th.Close() // idempotent
	if st := rt.SupervisionStats(); st.Drained < 2 {
		t.Errorf("Drained = %d, want >= 2 leftover conts", st.Drained)
	}
}

// TestSupervisedRoundTripStillCorrect is the zero-fault sanity check: with
// the full supervision stack on, the ordinary protocol is unchanged.
func TestSupervisedRoundTripStillCorrect(t *testing.T) {
	rt := New(sgx.MachineB(), []string{"blue"}, func(w *Worker, chunkID int, args []any) any {
		return args[0].(int) + 1
	})
	rt.Supervise = Supervision{WaitTimeout: time.Second, Watchdog: true}
	th := rt.NewThread()
	defer func() { th.Close(); rt.Shutdown() }()
	u := th.Normal()
	for j := 0; j < 200; j++ {
		th.AdvanceEpoch()
		u.Spawn(1, 1, []any{j}, true)
		got, err := u.Join(1)
		if err != nil || got != j+1 {
			t.Fatalf("round %d: %v, %v", j, got, err)
		}
	}
	st := rt.SupervisionStats()
	if st.Timeouts != 0 || st.Aborts != 0 || st.HostileTotal() != 0 {
		t.Errorf("clean run tripped counters: %+v", st)
	}
}
