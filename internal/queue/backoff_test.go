package queue

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestDequeueTimeoutEmpty checks the timeout path: an empty queue returns
// within (roughly) the deadline, reporting false.
func TestDequeueTimeoutEmpty(t *testing.T) {
	q := New[int]()
	start := time.Now()
	_, ok := q.DequeueTimeout(20 * time.Millisecond)
	if ok {
		t.Fatal("DequeueTimeout returned a value from an empty queue")
	}
	if el := time.Since(start); el < 15*time.Millisecond || el > 2*time.Second {
		t.Fatalf("timeout fired after %v, want ~20ms", el)
	}
}

// TestDequeueTimeoutDelivers checks that a value arriving mid-wait is
// delivered instead of timing out.
func TestDequeueTimeoutDelivers(t *testing.T) {
	q := New[int]()
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Enqueue(7)
	}()
	v, ok := q.DequeueTimeout(5 * time.Second)
	if !ok || v != 7 {
		t.Fatalf("DequeueTimeout = (%v, %v), want (7, true)", v, ok)
	}
}

// TestDequeueBlockParksWhenIdle checks the satellite fix: a consumer with
// nothing to consume must park (sleep) rather than hot-spin on
// runtime.Gosched.
func TestDequeueBlockParksWhenIdle(t *testing.T) {
	q := New[int]()
	done := make(chan int)
	go func() { done <- q.DequeueBlock() }()
	time.Sleep(30 * time.Millisecond)
	if q.Parks() == 0 {
		t.Error("idle DequeueBlock never parked (still hot-spinning)")
	}
	q.Enqueue(1)
	if v := <-done; v != 1 {
		t.Fatalf("DequeueBlock = %d", v)
	}
}

// TestDequeueTimeoutNonPositive degrades to one non-blocking attempt.
func TestDequeueTimeoutNonPositive(t *testing.T) {
	q := New[int]()
	if _, ok := q.DequeueTimeout(0); ok {
		t.Fatal("zero timeout on empty queue returned ok")
	}
	q.Enqueue(3)
	if v, ok := q.DequeueTimeout(-1); !ok || v != 3 {
		t.Fatalf("DequeueTimeout(-1) = (%v, %v)", v, ok)
	}
}

// BenchmarkHopLatency measures one queue round trip between two goroutines
// (the runtime's spawn→done hop) with blocking consumers on both sides.
func BenchmarkHopLatency(b *testing.B) {
	benchmarkHop(b, 0)
}

// BenchmarkHopLatencyWithIdleWaiters runs the same ping-pong while 8 idle
// workers block on empty queues. With the old Gosched hot-spin the idle
// waiters competed for every core and the hop slowed down; with parked
// sleeps the numbers should match BenchmarkHopLatency closely while the
// park counters (reported as parks/op) show the waiters asleep.
func BenchmarkHopLatencyWithIdleWaiters(b *testing.B) {
	benchmarkHop(b, 8)
}

func benchmarkHop(b *testing.B, idleWaiters int) {
	var stop atomic.Bool
	idle := make([]*Queue[int], idleWaiters)
	for i := range idle {
		idle[i] = New[int]()
		go func(q *Queue[int]) {
			for q.DequeueBlock() != -1 {
			}
		}(idle[i])
	}
	defer func() {
		stop.Store(true)
		for _, q := range idle {
			q.Enqueue(-1)
		}
	}()

	req, resp := New[int](), New[int]()
	go func() {
		for {
			v := req.DequeueBlock()
			if v == -1 {
				return
			}
			resp.Enqueue(v)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Enqueue(i)
		resp.DequeueBlock()
	}
	b.StopTimer()
	req.Enqueue(-1)
	var parks int64
	for _, q := range idle {
		parks += q.Parks()
	}
	if idleWaiters > 0 {
		b.ReportMetric(float64(parks)/float64(b.N), "idle-parks/op")
	}
}
