package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedTryEnqueue: the cooperative producer path refuses elements at
// capacity, while the raw Enqueue path (re-deliveries, the attacker) still
// succeeds.
func TestBoundedTryEnqueue(t *testing.T) {
	q := NewBounded[int](2)
	if q.Capacity() != 2 {
		t.Fatalf("Capacity() = %d, want 2", q.Capacity())
	}
	if !q.TryEnqueue(1) || !q.TryEnqueue(2) {
		t.Fatal("TryEnqueue below capacity must succeed")
	}
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue at capacity must fail")
	}
	q.Enqueue(3) // raw path ignores the bound
	if got := q.Depth(); got != 3 {
		t.Fatalf("Depth() = %d after raw overfill, want 3", got)
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = %v,%v, want 1,true", v, ok)
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("second Dequeue must succeed")
	}
	// Depth is back below the bound, so admission resumes.
	if !q.TryEnqueue(4) {
		t.Fatal("TryEnqueue below capacity must succeed again")
	}
}

// TestBoundedProducerBlocksNotDrops: a producer at capacity blocks in
// EnqueueBlock until the consumer makes room — no element is ever dropped —
// and the depth gauge and counters agree with the delivered count. Run
// under -race this also proves the bounded mode is data-race free.
func TestBoundedProducerBlocksNotDrops(t *testing.T) {
	const capacity, total = 4, 2000
	q := NewBounded[int](capacity)

	var produced atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			q.EnqueueBlock(i)
			produced.Add(1)
		}
	}()

	// Fill phase: with the consumer idle, the producer must stall at the
	// bound instead of running ahead.
	deadline := time.Now().Add(2 * time.Second)
	for produced.Load() < capacity {
		if time.Now().After(deadline) {
			t.Fatalf("producer never reached capacity (%d/%d)", produced.Load(), capacity)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give a buggy producer time to overrun
	if got := produced.Load(); got > capacity+1 {
		t.Fatalf("producer ran %d elements past a capacity-%d queue without a consumer", got, capacity)
	}
	if got := q.Depth(); got > capacity {
		t.Fatalf("Depth() = %d exceeds capacity %d", got, capacity)
	}

	// Drain phase: every element arrives, in order, exactly once.
	for i := 0; i < total; i++ {
		v, ok := q.dequeueDeadline(time.Now().Add(5 * time.Second))
		if !ok {
			t.Fatalf("dequeue %d timed out; producer wedged with depth=%d", i, q.Depth())
		}
		if v != i {
			t.Fatalf("dequeue %d returned %d: bounded mode dropped or reordered", i, v)
		}
	}
	wg.Wait()

	enq, deq := q.Stats()
	if enq != total || deq != total {
		t.Fatalf("Stats() = %d enqueues, %d dequeues; want %d each", enq, deq, total)
	}
	if q.Depth() != 0 {
		t.Fatalf("Depth() = %d after full drain, want 0", q.Depth())
	}
	if q.FullWaits() == 0 {
		t.Error("FullWaits() = 0: the producer never saw backpressure despite a blocked fill phase")
	}
}

// TestBoundedManyProducers: concurrent producers over a bounded queue under
// the race detector; delivered counts must balance exactly.
func TestBoundedManyProducers(t *testing.T) {
	const producers, per = 8, 300
	q := NewBounded[int](8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.EnqueueBlock(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*per)
	for i := 0; i < producers*per; i++ {
		v, ok := q.dequeueDeadline(time.Now().Add(5 * time.Second))
		if !ok {
			t.Fatalf("dequeue %d timed out", i)
		}
		if seen[v] {
			t.Fatalf("element %d delivered twice", v)
		}
		seen[v] = true
	}
	wg.Wait()
	if q.Depth() != 0 {
		t.Fatalf("Depth() = %d after drain, want 0", q.Depth())
	}
}
