package queue

import (
	"sync"
	"testing"
	"time"
)

// TestEnqueueBlockParkedProducerReleased: a producer that has gone all the
// way down the backoff schedule (past spinning and yielding into parked
// sleeps) must still observe a much later drain and complete. This is the
// shutdown-adjacent edge: prt teardown drains queues while producers may
// be blocked at capacity, and a producer that misses the wakeup would hang
// Close forever.
func TestEnqueueBlockParkedProducerReleased(t *testing.T) {
	q := NewBounded[int](2)
	q.Enqueue(1)
	q.Enqueue(2)
	done := make(chan struct{})
	go func() {
		q.EnqueueBlock(3)
		close(done)
	}()
	// Wait until the producer is provably parked, not just spinning.
	deadline := time.Now().Add(2 * time.Second)
	for q.Parks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never reached the parked stage of the backoff")
		}
		time.Sleep(time.Millisecond)
	}
	// Let the sleep back off toward its cap before making room.
	time.Sleep(5 * time.Millisecond)
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("drain dequeue failed on a full queue")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parked producer missed the drain and never completed")
	}
	if got := q.FullWaits(); got != 1 {
		t.Errorf("FullWaits() = %d, want 1", got)
	}
}

// TestEnqueueBlockRacingDrain models teardown: several producers hammer a
// capacity-1 queue with EnqueueBlock while a late-starting drainer empties
// it. Every element must arrive exactly once and every producer must
// return — a lost element or a wedged producer is exactly the bug that
// would turn runtime shutdown into a deadlock.
func TestEnqueueBlockRacingDrain(t *testing.T) {
	const producers, per = 4, 200
	q := NewBounded[int](1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.EnqueueBlock(p*per + i)
			}
		}(p)
	}
	// Start draining only after the producers have piled up at the bound.
	time.Sleep(2 * time.Millisecond)
	seen := make(map[int]bool, producers*per)
	for i := 0; i < producers*per; i++ {
		v, ok := q.dequeueDeadline(time.Now().Add(5 * time.Second))
		if !ok {
			t.Fatalf("drain %d timed out with depth=%d", i, q.Depth())
		}
		if seen[v] {
			t.Fatalf("element %d delivered twice", v)
		}
		seen[v] = true
	}
	wg.Wait()
	if got := q.Depth(); got != 0 {
		t.Fatalf("Depth() = %d after full drain, want 0", got)
	}
}

// TestTryEnqueueFullStaysFull: repeated TryEnqueue against a full queue
// with no consumer must keep failing without disturbing the queued
// contents, and a single dequeue reopens exactly one admission slot.
func TestTryEnqueueFullStaysFull(t *testing.T) {
	q := NewBounded[int](3)
	for i := 1; i <= 3; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) below capacity failed", i)
		}
	}
	for attempt := 0; attempt < 50; attempt++ {
		if q.TryEnqueue(99) {
			t.Fatalf("TryEnqueue succeeded on a full queue (attempt %d)", attempt)
		}
	}
	if got := q.Depth(); got != 3 {
		t.Fatalf("Depth() = %d after rejected attempts, want 3", got)
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = %v,%v, want 1,true — rejected attempts disturbed the queue", v, ok)
	}
	if !q.TryEnqueue(4) {
		t.Fatal("TryEnqueue after one dequeue must succeed")
	}
	if q.TryEnqueue(5) {
		t.Fatal("second TryEnqueue must fail: only one slot was reopened")
	}
	// The surviving contents are intact and in order.
	for want := 2; want <= 4; want++ {
		if v, ok := q.Dequeue(); !ok || v != want {
			t.Fatalf("Dequeue = %v,%v, want %d,true", v, ok, want)
		}
	}
}
