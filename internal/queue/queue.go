// Package queue provides the lock-free FIFO communication channel of the
// Privagic runtime (paper §7.3.2: "each worker thread has a communication
// channel implemented as a lock-free FIFO queue stored in unsafe memory",
// citing Michael & Scott and Herlihy & Shavit [21, 28]).
//
// The implementation is a Michael–Scott queue on atomic pointers. Go's
// garbage collector plays the role of the hazard-pointer reclamation scheme
// of [28], which is exactly the simplification those papers anticipate for
// managed runtimes.
//
// Each queue tracks its own depth, enqueue/dequeue totals, park-sleeps
// and full-queue waits; the runtime aggregates them across workers into
// the prt.queue.* gauges (see OBSERVABILITY.md).
package queue

import (
	"runtime"
	"sync/atomic"
	"time"
)

// node is one queue cell.
type node[T any] struct {
	val  T
	next atomic.Pointer[node[T]]
}

// Queue is a multi-producer multi-consumer lock-free FIFO.
// The zero value is not ready; use New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // sentinel; head.next is the front
	tail atomic.Pointer[node[T]]

	// capacity, when positive, bounds the queue for the cooperative
	// producer paths (TryEnqueue/EnqueueBlock). Enqueue itself never
	// blocks or fails: it is the raw insertion path (re-deliveries, the
	// fault injector playing the attacker), and an attacker does not
	// honor backpressure. The bound is therefore a protocol contract,
	// not a memory guarantee — and because Len is a racy difference of
	// counters, the bound is approximate by up to the number of
	// concurrent producers.
	capacity int64

	enqueues  atomic.Int64
	dequeues  atomic.Int64
	parks     atomic.Int64
	fullWaits atomic.Int64
}

// New creates an empty, unbounded queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// NewBounded creates a queue whose cooperative producers (TryEnqueue,
// EnqueueBlock) respect a capacity; cap < 1 means unbounded.
func NewBounded[T any](capacity int) *Queue[T] {
	q := New[T]()
	if capacity > 0 {
		q.capacity = int64(capacity)
	}
	return q
}

// Enqueue appends v (Michael–Scott two-step publish).
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us
		}
		if next != nil {
			// Help a stalled producer finish swinging the tail.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.enqueues.Add(1)
			return
		}
	}
}

// TryEnqueue appends v unless the queue is bounded and at capacity, in
// which case it reports false without enqueueing. On an unbounded queue it
// always succeeds.
func (q *Queue[T]) TryEnqueue(v T) bool {
	if q.capacity > 0 && q.Len() >= q.capacity {
		return false
	}
	q.Enqueue(v)
	return true
}

// EnqueueBlock appends v, waiting (spin → yield → parked sleep, the same
// backoff schedule as DequeueBlock) while a bounded queue is at capacity.
// This is the backpressure edge: a producer feeding a saturated consumer
// slows down to the consumer's pace instead of growing the queue.
func (q *Queue[T]) EnqueueBlock(v T) {
	if q.TryEnqueue(v) {
		return
	}
	q.fullWaits.Add(1)
	sleep := sleepStart
	for i := 0; ; i++ {
		switch {
		case i < spinIters:
			// hot spin
		case i < spinIters+yieldIters:
			runtime.Gosched()
		default:
			q.parks.Add(1)
			time.Sleep(sleep)
			if sleep < sleepCap {
				sleep *= 2
			}
		}
		if q.TryEnqueue(v) {
			return
		}
	}
}

// Dequeue removes and returns the front element, reporting false when the
// queue is empty.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return zero, false
		}
		if head == tail {
			// Tail lagging behind: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			// Only the CAS winner may touch val: a pre-CAS read would race
			// with the winner's zeroing write on a contended node (losers
			// discard the value, but the unordered access pair is real).
			v := next.val
			next.val = zero // drop the reference for the GC
			q.dequeues.Add(1)
			return v, true
		}
	}
}

// Blocking-dequeue backoff schedule: a short hot spin catches the common
// ping-pong case where the producer is already mid-Enqueue, a few scheduler
// yields cover a producer that holds the core, and after that the waiter
// parks in exponentially growing sleeps so an idle worker costs (almost) no
// CPU. The sleep cap bounds the added latency of a message that arrives
// while the consumer is parked.
const (
	spinIters  = 128
	yieldIters = 32
	sleepStart = time.Microsecond
	sleepCap   = 256 * time.Microsecond
)

// DequeueBlock waits (spin → yield → parked sleep) until an element
// arrives. The Privagic runtime's wait primitive is built on it.
func (q *Queue[T]) DequeueBlock() T {
	v, _ := q.dequeueDeadline(time.Time{})
	return v
}

// DequeueTimeout waits like DequeueBlock but gives up after d, reporting
// false. A non-positive d degrades to a single non-blocking attempt.
func (q *Queue[T]) DequeueTimeout(d time.Duration) (T, bool) {
	if d <= 0 {
		return q.Dequeue()
	}
	return q.dequeueDeadline(time.Now().Add(d))
}

// dequeueDeadline runs the backoff loop; a zero deadline means forever.
func (q *Queue[T]) dequeueDeadline(deadline time.Time) (T, bool) {
	sleep := sleepStart
	for i := 0; ; i++ {
		if v, ok := q.Dequeue(); ok {
			return v, true
		}
		switch {
		case i < spinIters:
			// hot spin
		case i < spinIters+yieldIters:
			runtime.Gosched()
		default:
			if !deadline.IsZero() && time.Now().After(deadline) {
				var zero T
				return zero, false
			}
			q.parks.Add(1)
			time.Sleep(sleep)
			if sleep < sleepCap {
				sleep *= 2
			}
		}
	}
}

// Len returns an instantaneous (racy) element count, useful for stats.
func (q *Queue[T]) Len() int64 {
	n := q.enqueues.Load() - q.dequeues.Load()
	if n < 0 {
		return 0
	}
	return n
}

// Stats returns total enqueue and dequeue counts (the message-cost input of
// the SGX cost model).
func (q *Queue[T]) Stats() (enqueues, dequeues int64) {
	return q.enqueues.Load(), q.dequeues.Load()
}

// Parks counts how many times a blocking dequeue slept instead of spinning
// — the observable difference between a parked idle worker and a hot one.
func (q *Queue[T]) Parks() int64 { return q.parks.Load() }

// Depth is the queue-depth gauge (an alias of Len, named for metrics).
func (q *Queue[T]) Depth() int64 { return q.Len() }

// Capacity returns the cooperative bound (0 = unbounded).
func (q *Queue[T]) Capacity() int64 { return q.capacity }

// FullWaits counts how many EnqueueBlock calls found the queue at capacity
// and had to wait — the backpressure events seen by producers.
func (q *Queue[T]) FullWaits() int64 { return q.fullWaits.Load() }
