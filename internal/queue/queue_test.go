package queue

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	for i := 0; i < 1000; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestEmptyDequeue(t *testing.T) {
	q := New[string]()
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("Dequeue on empty = (%q,true)", v)
	}
}

// TestConcurrentMPMC hammers the queue with many producers and consumers
// and checks that every element is delivered exactly once.
func TestConcurrentMPMC(t *testing.T) {
	const producers, perProducer, consumers = 8, 2000, 8
	q := New[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	got := make(chan int, producers*perProducer)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Dequeue()
				if ok {
					got <- v
					continue
				}
				select {
				case <-done:
					// Drain once more after producers finish.
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						got <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	close(got)
	seen := map[int]bool{}
	for v := range got {
		if seen[v] {
			t.Fatalf("element %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d elements, want %d", len(seen), producers*perProducer)
	}
}

// TestPerProducerOrder checks the FIFO property per producer under
// concurrency: a single consumer must observe each producer's elements in
// increasing order.
func TestPerProducerOrder(t *testing.T) {
	const producers, perProducer = 4, 5000
	q := New[[2]int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue([2]int{p, i})
			}
		}(p)
	}
	go func() { wg.Wait() }()
	last := map[int]int{}
	for n := 0; n < producers*perProducer; n++ {
		v := q.DequeueBlock()
		p, i := v[0], v[1]
		if prev, ok := last[p]; ok && i <= prev {
			t.Fatalf("producer %d out of order: %d after %d", p, i, prev)
		}
		last[p] = i
	}
}

// TestQuickSequential is a property test: any interleaved sequence of
// enqueues and dequeues behaves like a model slice queue.
func TestQuickSequential(t *testing.T) {
	f := func(ops []int16) bool {
		q := New[int16]()
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Enqueue(op)
				model = append(model, op)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		for _, want := range model {
			v, ok := q.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 4; i++ {
		q.Dequeue()
	}
	enq, deq := q.Stats()
	if enq != 10 || deq != 4 {
		t.Errorf("Stats = (%d,%d), want (10,4)", enq, deq)
	}
	if q.Len() != 6 {
		t.Errorf("Len = %d, want 6", q.Len())
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}
