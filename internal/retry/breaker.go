package retry

import (
	"sync"
	"time"
)

// Breaker is the per-dependency circuit breaker that complements Policy:
// the policy bounds how hard one operation tries, the breaker bounds how
// hard the whole client keeps trying a dependency that is failing for
// everyone. The cluster router runs one per shard so that a gray-failed
// link (resets, blackholes, saturated timeouts) degrades into fast typed
// errors and a demotion instead of every caller burning its full
// timeout-times-attempts budget against a dead data path.
//
// States follow the classic machine:
//
//	Closed    — requests flow; Failures consecutive failures trip to Open.
//	Open      — requests are refused (Allow() == false) until Cooldown
//	            has passed, then the breaker half-opens.
//	HalfOpen  — exactly one trial request is admitted at a time; Trials
//	            consecutive successes close the breaker, any failure
//	            re-opens it and restarts the cooldown.
//
// The trial in half-open is how probing stays bounded: the router wires
// its per-shard data-path canary through Allow(), so a broken shard is
// re-tested at the probe cadence, never by live traffic stampeding back.
//
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while Closed
	oks      int // consecutive trial successes while HalfOpen
	openedAt time.Time
	trial    bool // a half-open trial is in flight
}

// BreakerState is the breaker's position in the trip/probe cycle.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero values take the documented
// defaults.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker
	// (default 5). Only consecutive failures count: any success resets
	// the streak, so a lossy-but-working dependency never trips.
	Failures int
	// Cooldown is how long the breaker stays Open before admitting a
	// half-open trial (default 50ms).
	Cooldown time.Duration
	// Trials is how many consecutive half-open successes close the
	// breaker again (default 1).
	Trials int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	return c
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. Closed always admits.
// Open refuses until the cooldown has elapsed, at which point the
// breaker half-opens and this call is admitted as the trial. HalfOpen
// admits one trial at a time; callers that were admitted MUST report the
// outcome with Success or Failure, or the trial slot leaks.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.oks = 0
		b.trial = true
		return true
	default: // BreakerHalfOpen
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a successful request. In HalfOpen it completes the
// in-flight trial; Trials consecutive successes close the breaker.
// Returns true when this call transitioned the breaker to Closed.
func (b *Breaker) Success() (closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.trial = false
		b.oks++
		if b.oks >= b.cfg.Trials {
			b.state = BreakerClosed
			b.fails = 0
			return true
		}
	}
	// A success while Open belongs to a request admitted before the
	// trip; the verdict is stale, ignore it.
	return false
}

// Failure records a failed request. Returns true when this call tripped
// the breaker to Open (from Closed after Failures consecutive failures,
// or from HalfOpen on a failed trial).
func (b *Breaker) Failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			return true
		}
	case BreakerHalfOpen:
		b.trial = false
		b.state = BreakerOpen
		b.openedAt = time.Now()
		return true
	}
	return false
}

// State returns the breaker's current state (Open reported as Open even
// when the cooldown has lapsed — the transition happens on Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Reset force-closes the breaker and clears every streak — for a
// dependency known to have been replaced (the router calls it when a
// shard is readmitted at a fresh incarnation).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails, b.oks = 0, 0
	b.trial = false
}
