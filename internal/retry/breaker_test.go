package retry

import (
	"testing"
	"time"
)

// TestBreakerTripsOnConsecutiveFailures: Failures consecutive failures
// open the breaker; an interleaved success resets the streak.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Hour})
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	if b.Failure() || b.Failure() {
		t.Fatal("tripped before 3 consecutive failures")
	}
	if !b.Failure() {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown, exactly one trial is
// admitted; its success closes the breaker.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Millisecond})
	b.Failure()
	time.Sleep(3 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown lapsed but no trial admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while trial in flight")
	}
	if !b.Success() {
		t.Fatal("trial success did not close the breaker")
	}
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("breaker not closed after successful trial")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed trial re-opens the breaker
// and restarts the cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: 2 * time.Millisecond})
	b.Failure()
	time.Sleep(5 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no trial admitted after cooldown")
	}
	if !b.Failure() {
		t.Fatal("failed trial did not report a re-trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after failed trial", b.State())
	}
	if b.Allow() {
		t.Fatal("request admitted immediately after failed trial")
	}
}

// TestBreakerMultiTrialClose: Trials > 1 requires that many consecutive
// half-open successes before closing.
func TestBreakerMultiTrialClose(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Millisecond, Trials: 2})
	b.Failure()
	time.Sleep(3 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no first trial")
	}
	if b.Success() {
		t.Fatal("closed after 1 of 2 trials")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open between trials", b.State())
	}
	if !b.Allow() {
		t.Fatal("no second trial")
	}
	if !b.Success() {
		t.Fatal("second trial success did not close")
	}
}

// TestBreakerReset force-closes from any state.
func TestBreakerReset(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	b.Reset()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("Reset did not close the breaker")
	}
	// The old failure streak must be gone: one new failure (< Failures
	// after reset re-defaults? no — same config) trips again at 1.
	if !b.Failure() {
		t.Fatal("post-reset failure accounting broken")
	}
}

// TestBreakerDefaults: zero config takes 5 failures / 50ms / 1 trial.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		if b.Failure() {
			t.Fatalf("tripped at failure %d, want 5", i+1)
		}
	}
	if !b.Failure() {
		t.Fatal("did not trip at 5 consecutive failures")
	}
}

// TestBreakerStateString covers the state labels used in error text.
func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:    "closed",
		BreakerOpen:      "open",
		BreakerHalfOpen:  "half-open",
		BreakerState(99): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
