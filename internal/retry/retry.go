// Package retry is the one bounded retry-with-backoff policy the runtime
// shares: the recovery layer replays crashed spawns with it (internal/prt)
// and the cluster router re-sends failed shard requests with it
// (internal/cluster). Extracting it keeps the two consumers honest — one
// implementation, one set of tests, one place where "exponential backoff
// with decorrelating jitter, bounded attempts" is defined.
package retry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds retry behavior. The zero value disables retries.
type Policy struct {
	// MaxAttempts is how many times a failed operation is retried before
	// its error is surfaced. 0 disables retries; the budget is per
	// operation, so an unlucky one costs at most MaxAttempts+1
	// executions — bounded recovery, never a retry loop.
	MaxAttempts int
	// Backoff is the delay before the first retry (default 100µs). Each
	// further retry doubles it up to MaxBackoff (default 2ms). The
	// defaults sit well inside a sane supervision window: retry traffic
	// restarts the inactivity window, so backoff never reads as a stall.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2),
	// decorrelating the retries of independent threads so a mass failure
	// does not re-issue in lockstep.
	Jitter float64
}

// Enabled reports whether the policy performs any retries.
func (p Policy) Enabled() bool { return p.MaxAttempts > 0 }

// jitterRng decorrelates retry delays. Jitter is deliberately outside
// any deterministic fault-schedule RNG: it perturbs timing only, never a
// protocol decision. It is seeded from entropy — jitter exists so that
// independent processes do NOT back off in lockstep, which a constant
// seed would reintroduce across every process running this code.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(entropySeed()))
)

// entropySeed draws a jitter seed from the OS entropy pool, falling back
// to the wall clock if that fails (timing decorrelation still beats a
// constant).
func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return int64(binary.LittleEndian.Uint64(b[:]))
	}
	return time.Now().UnixNano()
}

// SeedJitter re-seeds the jitter RNG deterministically — for soak tests
// that want reproducible backoff timing within one process. Production
// code should never call it.
func SeedJitter(seed int64) {
	jitterMu.Lock()
	jitterRng = rand.New(rand.NewSource(seed))
	jitterMu.Unlock()
}

// Delay computes the backoff before retry number attempt (1-based):
// Backoff doubled attempt-1 times, capped at MaxBackoff, jittered.
func (p Policy) Delay(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	jit := p.Jitter
	if jit <= 0 {
		jit = 0.2
	}
	if jit > 1 {
		jit = 1
	}
	jitterMu.Lock()
	f := 1 + jit*(2*jitterRng.Float64()-1)
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Sleep blocks for Delay(attempt), returning early with ctx.Err() when
// ctx is canceled first — a caller shutting down must not serve out the
// full backoff before noticing. A nil ctx sleeps unconditionally.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
