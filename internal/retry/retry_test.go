package retry

import (
	"testing"
	"time"
)

// TestDelayDoublesAndCaps pins the deterministic part of the schedule:
// base doubling per attempt, capped at MaxBackoff, for a jitter small
// enough to bound each sample.
func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 5, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: 0.01}
	want := []time.Duration{
		1 * time.Millisecond, // attempt 1
		2 * time.Millisecond,
		4 * time.Millisecond,
		4 * time.Millisecond, // capped
		4 * time.Millisecond,
	}
	for i, base := range want {
		got := p.Delay(i + 1)
		lo := time.Duration(float64(base) * 0.98)
		hi := time.Duration(float64(base) * 1.02)
		if got < lo || got > hi {
			t.Errorf("Delay(%d) = %v, want %v ±1%%", i+1, got, base)
		}
	}
}

// TestDelayDefaults exercises the zero-value knobs: 100µs base, 2ms cap,
// ±20% jitter.
func TestDelayDefaults(t *testing.T) {
	var p Policy
	d1 := p.Delay(1)
	if d1 < 80*time.Microsecond || d1 > 120*time.Microsecond {
		t.Errorf("default first delay %v outside 100µs ±20%%", d1)
	}
	// Far beyond the doubling horizon the cap holds.
	d9 := p.Delay(9)
	if d9 < 1600*time.Microsecond || d9 > 2400*time.Microsecond {
		t.Errorf("default capped delay %v outside 2ms ±20%%", d9)
	}
}

// TestJitterSpreads asserts the jitter actually decorrelates: over many
// samples the delays are not all identical.
func TestJitterSpreads(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: 0.5}
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[p.Delay(1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 jittered delays collapsed to %d distinct value(s)", len(seen))
	}
}

// TestJitterClamped: a Jitter above 1 is clamped so a delay can never go
// negative.
func TestJitterClamped(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, Jitter: 50}
	for i := 0; i < 64; i++ {
		if d := p.Delay(1); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

// TestEnabled pins the zero-value-disables contract.
func TestEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
	if !(Policy{MaxAttempts: 1}).Enabled() {
		t.Error("MaxAttempts=1 reports disabled")
	}
}
