package retry

import (
	"context"
	"testing"
	"time"
)

// TestDelayDoublesAndCaps pins the deterministic part of the schedule:
// base doubling per attempt, capped at MaxBackoff, for a jitter small
// enough to bound each sample.
func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 5, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: 0.01}
	want := []time.Duration{
		1 * time.Millisecond, // attempt 1
		2 * time.Millisecond,
		4 * time.Millisecond,
		4 * time.Millisecond, // capped
		4 * time.Millisecond,
	}
	for i, base := range want {
		got := p.Delay(i + 1)
		lo := time.Duration(float64(base) * 0.98)
		hi := time.Duration(float64(base) * 1.02)
		if got < lo || got > hi {
			t.Errorf("Delay(%d) = %v, want %v ±1%%", i+1, got, base)
		}
	}
}

// TestDelayDefaults exercises the zero-value knobs: 100µs base, 2ms cap,
// ±20% jitter.
func TestDelayDefaults(t *testing.T) {
	var p Policy
	d1 := p.Delay(1)
	if d1 < 80*time.Microsecond || d1 > 120*time.Microsecond {
		t.Errorf("default first delay %v outside 100µs ±20%%", d1)
	}
	// Far beyond the doubling horizon the cap holds.
	d9 := p.Delay(9)
	if d9 < 1600*time.Microsecond || d9 > 2400*time.Microsecond {
		t.Errorf("default capped delay %v outside 2ms ±20%%", d9)
	}
}

// TestJitterSpreads asserts the jitter actually decorrelates: over many
// samples the delays are not all identical.
func TestJitterSpreads(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: 0.5}
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[p.Delay(1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 jittered delays collapsed to %d distinct value(s)", len(seen))
	}
}

// TestJitterClamped: a Jitter above 1 is clamped so a delay can never go
// negative.
func TestJitterClamped(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, Jitter: 50}
	for i := 0; i < 64; i++ {
		if d := p.Delay(1); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

// TestEnabled pins the zero-value-disables contract.
func TestEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
	if !(Policy{MaxAttempts: 1}).Enabled() {
		t.Error("MaxAttempts=1 reports disabled")
	}
}

// TestDelayBackoffAboveCap: a misconfigured Backoff > MaxBackoff must
// clamp to the cap from attempt 1, not serve the oversized base.
func TestDelayBackoffAboveCap(t *testing.T) {
	p := Policy{MaxAttempts: 3, Backoff: 10 * time.Millisecond, MaxBackoff: time.Millisecond, Jitter: 0.01}
	for attempt := 1; attempt <= 4; attempt++ {
		got := p.Delay(attempt)
		hi := time.Duration(float64(time.Millisecond) * 1.02)
		if got > hi {
			t.Errorf("Delay(%d) = %v, want ≤ MaxBackoff(1ms)+jitter", attempt, got)
		}
		if got <= 0 {
			t.Errorf("Delay(%d) = %v, want positive", attempt, got)
		}
	}
}

// TestDelayHugeAttempt: astronomically large attempt numbers must not
// overflow the doubling loop — the cap short-circuits it.
func TestDelayHugeAttempt(t *testing.T) {
	p := Policy{MaxAttempts: 1 << 30, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Jitter: 0.01}
	for _, attempt := range []int{64, 1 << 20, 1 << 30, int(^uint(0) >> 1)} {
		got := p.Delay(attempt)
		lo := time.Duration(float64(8*time.Millisecond) * 0.98)
		hi := time.Duration(float64(8*time.Millisecond) * 1.02)
		if got < lo || got > hi {
			t.Errorf("Delay(%d) = %v, want 8ms ±1%%", attempt, got)
		}
	}
}

// TestJitterBounds: every sample must land inside base·(1±Jitter),
// for several jitter fractions.
func TestJitterBounds(t *testing.T) {
	base := time.Millisecond
	for _, jit := range []float64{0.1, 0.2, 0.5, 1.0} {
		p := Policy{MaxAttempts: 1, Backoff: base, MaxBackoff: base, Jitter: jit}
		lo := time.Duration(float64(base) * (1 - jit))
		hi := time.Duration(float64(base) * (1 + jit))
		for i := 0; i < 256; i++ {
			if d := p.Delay(1); d < lo || d > hi {
				t.Fatalf("Jitter=%v: Delay(1) = %v outside [%v, %v]", jit, d, lo, hi)
			}
		}
	}
}

// TestSeedJitterDeterministic: SeedJitter makes the delay stream
// reproducible — the soak-test override contract.
func TestSeedJitterDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: 0.5}
	sample := func() []time.Duration {
		SeedJitter(42)
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = p.Delay(1)
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v != %v after identical SeedJitter", i, a[i], b[i])
		}
	}
	// Restore entropy seeding for the rest of the test binary.
	SeedJitter(entropySeed())
}

// TestSleepCancellation: a canceled context must cut the backoff short
// and surface ctx.Err() — shutdown must not serve out the full delay.
func TestSleepCancellation(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Minute, MaxBackoff: time.Minute, Jitter: 0.01}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Sleep(ctx, 1)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Sleep took %v after cancel, want prompt return", elapsed)
	}
}

// TestSleepAlreadyCanceled: a pre-canceled context returns immediately
// without sleeping at all.
func TestSleepAlreadyCanceled(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Minute, MaxBackoff: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Sleep(ctx, 1); err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled Sleep took %v", elapsed)
	}
}

// TestSleepCompletes: an un-canceled Sleep serves the full delay and
// returns nil; a nil context is accepted.
func TestSleepCompletes(t *testing.T) {
	p := Policy{MaxAttempts: 1, Backoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: 0.01}
	if err := p.Sleep(context.Background(), 1); err != nil {
		t.Fatalf("Sleep = %v, want nil", err)
	}
	if err := p.Sleep(nil, 1); err != nil {
		t.Fatalf("Sleep(nil ctx) = %v, want nil", err)
	}
}
