package sgx

import "sync/atomic"

// CostModel carries the per-event cycle costs of the simulated SGX machine.
// Sources (see DESIGN.md §5): enclave transitions cost thousands of cycles
// (HotCalls [43]); the Intel SDK's lock-based switchless calls remain more
// expensive than Privagic's lock-free queue hop (§9.3.2, FastSGX [40]);
// an LLC miss in enclave mode takes 5.6–9.5x longer than in normal mode
// (Eleos [30], quoted twice by the paper); exceeding the EPC adds paging.
type CostModel struct {
	// EnclaveTransition is a full ecall/ocall-style crossing.
	EnclaveTransition int64
	// SwitchlessCall is the Intel SDK switchless call (lock-based spin).
	SwitchlessCall int64
	// SwitchlessContention is the extra cost per switchless round trip
	// when two enclaves ping-pong the lock (the Intel-sdk-2 case of
	// Figure 10; FastSGX [40] measures the convoy).
	SwitchlessContention int64
	// QueueMessage is one hop over Privagic's lock-free FIFO.
	QueueMessage int64
	// LLCHit and LLCMiss are normal-mode memory costs; DRAMRow is the
	// extra cost of a row-buffer miss (unused by default).
	LLCHit  int64
	LLCMiss int64
	// EnclaveMissFactor multiplies LLCMiss in enclave mode (5.6–9.5).
	EnclaveMissFactor float64
	// HitEnclaveFactor multiplies LLCHit in enclave mode: the EPC
	// access-control checks lengthen the L1-miss path even when the
	// line is on-package and needs no decryption.
	HitEnclaveFactor float64
	// EPCPageFault is the cost of an EPC paging event (the SGXv1 EWB
	// path under thrashing: AEX + kernel fault handling + eviction of a
	// victim page with integrity-tree updates).
	EPCPageFault int64
	// Syscall is a system call from normal mode; SyscallFromEnclave is
	// the full exit-syscall-reenter path a libOS pays.
	Syscall            int64
	SyscallFromEnclave int64
	// StreamMiss is the cost of an LLC miss on a sequential access
	// pattern, where the hardware prefetcher hides most of the latency
	// (this is why the paper's linked-list walk barely suffers in
	// enclave mode, Figure 9: only 1.2–1.7x vs unprotected).
	StreamMiss int64
	// StreamEnclaveFactor multiplies StreamMiss in enclave mode (the
	// MEE encrypts the stream but the prefetcher still pipelines it).
	StreamEnclaveFactor float64
	// TLBRefill is the per-page cost paid after an enclave transition
	// flushes the enclave TLB (an ordinary ECALL does; Privagic's
	// resident workers never transition, FastSGX [40]). It is the
	// workload-dependent part of the Intel SDK's boundary cost.
	TLBRefill int64
	// Retransmit is the cost of re-sending a message whose delivery was
	// not acknowledged in time: a timer read, re-enqueue, and the
	// receiver-side dedup check. Only the supervision layer pays it.
	Retransmit int64
}

// EnclaveMiss returns the enclave-mode LLC miss cost.
func (c *CostModel) EnclaveMiss() int64 {
	return int64(float64(c.LLCMiss) * c.EnclaveMissFactor)
}

// Machine is a hardware preset of the evaluation (§9.1).
type Machine struct {
	Name    string
	FreqGHz float64
	Cores   int
	// LLC geometry for the cache simulator.
	LLCBytes     int64
	LLCWays      int
	LLCLineBytes int
	// EPCBytes is the usable enclave page cache (93 MiB on machine A's
	// SGXv1; 8131 MiB on machine B's SGXv2).
	EPCBytes int64
	SGXv2    bool
	Cost     CostModel
}

// defaultCost returns the calibrated cost model shared by both machines.
func defaultCost() CostModel {
	return CostModel{
		EnclaveTransition:    8000,
		SwitchlessCall:       3000,
		SwitchlessContention: 6000,
		QueueMessage:         800,
		LLCHit:               40,
		LLCMiss:              220,
		EnclaveMissFactor:    8.5, // upper-mid band of Eleos's 5.6–9.5
		HitEnclaveFactor:     1.4,
		EPCPageFault:         320000,
		Syscall:              6000,
		SyscallFromEnclave:   23000,
		StreamMiss:           30,
		StreamEnclaveFactor:  2.0,
		TLBRefill:            30000,
		Retransmit:           1200, // one queue hop + timer bookkeeping
	}
}

// MachineA is the Intel i5-9500 of §9.1: 6 cores at 3 GHz, SGXv1 with a
// 93 MiB usable EPC, 9 MiB LLC.
func MachineA() *Machine {
	return &Machine{
		Name:         "machine-A/i5-9500",
		FreqGHz:      3.0,
		Cores:        6,
		LLCBytes:     9 << 20,
		LLCWays:      12,
		LLCLineBytes: 64,
		EPCBytes:     93 << 20,
		SGXv2:        false,
		Cost:         defaultCost(),
	}
}

// MachineB is the Xeon Gold 5415+ of §9.1: 16 CPUs, SGXv2 with an 8131 MiB
// EPC, 22.5 MiB LLC.
func MachineB() *Machine {
	return &Machine{
		Name:         "machine-B/xeon-5415+",
		FreqGHz:      2.9,
		Cores:        16,
		LLCBytes:     22*(1<<20) + (1 << 19), // 22.5 MiB
		LLCWays:      15,
		LLCLineBytes: 64,
		EPCBytes:     8131 << 20,
		SGXv2:        true,
		Cost:         defaultCost(),
	}
}

// SecondsFor converts cycles to seconds on this machine.
func (m *Machine) SecondsFor(cycles int64) float64 {
	return float64(cycles) / (m.FreqGHz * 1e9)
}

// Meter accumulates simulated cycles and event counts across threads.
type Meter struct {
	cycles      atomic.Int64
	transitions atomic.Int64
	messages    atomic.Int64
	syscalls    atomic.Int64
	pageFaults  atomic.Int64
	retransmits atomic.Int64
}

// Charge adds raw cycles.
func (mt *Meter) Charge(cycles int64) { mt.cycles.Add(cycles) }

// ChargeTransition records an enclave boundary crossing.
func (mt *Meter) ChargeTransition(c *CostModel) {
	mt.transitions.Add(1)
	mt.cycles.Add(c.EnclaveTransition)
}

// ChargeMessage records one lock-free queue hop.
func (mt *Meter) ChargeMessage(c *CostModel) {
	mt.messages.Add(1)
	mt.cycles.Add(c.QueueMessage)
}

// ChargeRetransmit records one supervision-layer message retransmission.
func (mt *Meter) ChargeRetransmit(c *CostModel) {
	mt.retransmits.Add(1)
	mt.cycles.Add(c.Retransmit)
}

// Retransmits returns how many retransmissions were charged.
func (mt *Meter) Retransmits() int64 { return mt.retransmits.Load() }

// ChargeSyscall records a system call from the given mode.
func (mt *Meter) ChargeSyscall(c *CostModel, mode Mode) {
	mt.syscalls.Add(1)
	if mode == Unsafe {
		mt.cycles.Add(c.Syscall)
	} else {
		mt.cycles.Add(c.SyscallFromEnclave)
	}
}

// ChargePageFault records an EPC paging event.
func (mt *Meter) ChargePageFault(c *CostModel) {
	mt.pageFaults.Add(1)
	mt.cycles.Add(c.EPCPageFault)
}

// Cycles returns the accumulated cycle count.
func (mt *Meter) Cycles() int64 { return mt.cycles.Load() }

// Counts returns the event counters (transitions, messages, syscalls,
// page faults).
func (mt *Meter) Counts() (transitions, messages, syscalls, pageFaults int64) {
	return mt.transitions.Load(), mt.messages.Load(), mt.syscalls.Load(), mt.pageFaults.Load()
}

// Reset zeroes the meter.
func (mt *Meter) Reset() {
	mt.cycles.Store(0)
	mt.transitions.Store(0)
	mt.messages.Store(0)
	mt.syscalls.Store(0)
	mt.pageFaults.Store(0)
	mt.retransmits.Store(0)
}
