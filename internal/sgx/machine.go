// Package sgx simulates the Intel SGX machine of the paper's evaluation:
// isolated enclave memory regions with processor-mode access checks (§2.1),
// an EPC capacity model, and a cycle cost model calibrated from the numbers
// the paper relies on (enclave transitions, the 5.6–9.5x LLC-miss penalty
// in enclave mode reported by Eleos [30], and switchless-call costs
// [40, 43]).
//
// No real SGX hardware is involved: this package is the substitution that
// DESIGN.md documents for the repro band. It preserves the two behaviours
// the evaluation depends on — who may touch which memory, and what each
// boundary crossing and cache miss costs.
package sgx

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RegionID identifies a memory region: 0 is unsafe memory, positive IDs are
// enclaves.
type RegionID int

// Unsafe is the region ID of unsafe (normal-world) memory.
const Unsafe RegionID = 0

// Mode is the processor mode: Unsafe when executing in normal mode, or the
// region ID of the single active enclave (§2.1: "when the processor enters
// the enclave mode, it gains access to a single enclave").
type Mode = RegionID

// CanAccess implements the SGX access rules of §2.1: normal mode reaches
// only unsafe memory; enclave mode reaches its own enclave plus unsafe
// memory, never another enclave.
func CanAccess(mode Mode, target RegionID) bool {
	return target == Unsafe || target == mode
}

// AccessError reports a forbidden memory access, the simulated equivalent
// of the page-permission fault SGX raises.
type AccessError struct {
	Mode   Mode
	Target RegionID
	Addr   uint64
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	return fmt.Sprintf("sgx: access violation: mode %d cannot touch region %d (addr %#x)", e.Mode, e.Target, e.Addr)
}

// Pointer encoding: the top 16 bits carry the region, the rest the offset.
const (
	regionShift = 48
	offsetMask  = (uint64(1) << regionShift) - 1
)

// EncodePtr packs a region and offset into a simulated 64-bit address.
// Offset 0 is reserved for nil, so allocations start at 8.
func EncodePtr(r RegionID, off uint64) uint64 {
	return uint64(r)<<regionShift | (off & offsetMask)
}

// DecodePtr unpacks a simulated address.
func DecodePtr(p uint64) (RegionID, uint64) {
	return RegionID(p >> regionShift), p & offsetMask
}

// Region is one memory region (unsafe memory or an enclave).
type Region struct {
	ID   RegionID
	Name string

	mu   sync.Mutex
	mem  []byte
	brk  uint64 // bump-allocation watermark
	used atomic.Int64
}

// NewRegion creates a region with a small initial reservation.
func NewRegion(id RegionID, name string) *Region {
	return &Region{ID: id, Name: name, mem: make([]byte, 4096), brk: 8}
}

// Alloc bump-allocates n bytes (8-byte aligned) and returns the offset.
func (r *Region) Alloc(n int64) uint64 {
	if n <= 0 {
		n = 1
	}
	r.mu.Lock()
	off := (r.brk + 7) &^ 7
	r.brk = off + uint64(n)
	for r.brk > uint64(len(r.mem)) {
		r.mem = append(r.mem, make([]byte, len(r.mem))...)
	}
	r.mu.Unlock()
	r.used.Add(n)
	return off
}

// Used returns the bytes allocated so far (the EPC pressure input).
func (r *Region) Used() int64 { return r.used.Load() }

// Extent returns the allocation watermark: offsets below it are mapped,
// offsets at or above it have never been handed out by Alloc. This is the
// region's memory map as far as pointer sanitization is concerned — an
// address arriving from unsafe memory is only dereferenced if its whole
// range lies under the extent of its region.
func (r *Region) Extent() uint64 {
	r.mu.Lock()
	brk := r.brk
	r.mu.Unlock()
	return brk
}

// Load copies len(buf) bytes at off into buf. Reads beyond the backing
// array are zero-filled instead of faulting: the simulated machine must
// never let a hostile (or corrupted) out-of-range address crash the host
// process — on real SGX the access faults inside the enclave, and here
// the sanitization layer (when armed) raises the typed violation before
// the load is even attempted.
func (r *Region) Load(off uint64, buf []byte) {
	r.mu.Lock()
	n := 0
	if off < uint64(len(r.mem)) {
		n = copy(buf, r.mem[off:])
	}
	r.mu.Unlock()
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
}

// Store copies buf into the region at off.
func (r *Region) Store(off uint64, buf []byte) {
	r.mu.Lock()
	for off+uint64(len(buf)) > uint64(len(r.mem)) {
		r.mem = append(r.mem, make([]byte, len(r.mem)+4096)...)
	}
	copy(r.mem[off:], buf)
	r.mu.Unlock()
}

// AddressSpace is the set of regions of one simulated machine run: unsafe
// memory plus one region per enclave color.
type AddressSpace struct {
	regions []*Region
}

// NewAddressSpace creates an address space with unsafe memory and the named
// enclaves (region IDs 1..n in order).
func NewAddressSpace(enclaves ...string) *AddressSpace {
	as := &AddressSpace{}
	as.regions = append(as.regions, NewRegion(Unsafe, "unsafe"))
	for i, name := range enclaves {
		as.regions = append(as.regions, NewRegion(RegionID(i+1), name))
	}
	return as
}

// Region returns the region with the given ID, or nil.
func (as *AddressSpace) Region(id RegionID) *Region {
	if int(id) < 0 || int(id) >= len(as.regions) {
		return nil
	}
	return as.regions[id]
}

// Regions returns all regions.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// MaxOffset caps the in-region offset a checked access may name. Real
// machines have a finite physical map; here the cap keeps a hostile or
// bit-flipped offset from ballooning the backing slice (Store grows to
// fit) into an out-of-memory. Well above any workload's footprint.
const MaxOffset = uint64(1) << 28 // 256 MiB per region

// CheckedLoad performs a mode-checked load at a simulated address.
func (as *AddressSpace) CheckedLoad(mode Mode, addr uint64, buf []byte) error {
	rid, off := DecodePtr(addr)
	if !CanAccess(mode, rid) {
		return &AccessError{Mode: mode, Target: rid, Addr: addr}
	}
	r := as.Region(rid)
	if r == nil {
		return fmt.Errorf("sgx: load from unmapped region %d", rid)
	}
	if off+uint64(len(buf)) > MaxOffset {
		return fmt.Errorf("sgx: load at %#x beyond region ceiling", addr)
	}
	r.Load(off, buf)
	return nil
}

// CheckedStore performs a mode-checked store at a simulated address.
func (as *AddressSpace) CheckedStore(mode Mode, addr uint64, buf []byte) error {
	rid, off := DecodePtr(addr)
	if !CanAccess(mode, rid) {
		return &AccessError{Mode: mode, Target: rid, Addr: addr}
	}
	r := as.Region(rid)
	if r == nil {
		return fmt.Errorf("sgx: store to unmapped region %d", rid)
	}
	if off+uint64(len(buf)) > MaxOffset {
		return fmt.Errorf("sgx: store at %#x beyond region ceiling", addr)
	}
	r.Store(off, buf)
	return nil
}
