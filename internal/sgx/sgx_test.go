package sgx

import (
	"testing"
	"testing/quick"
)

func TestPointerEncoding(t *testing.T) {
	f := func(r uint16, off uint64) bool {
		rid := RegionID(r % 64)
		off &= offsetMask
		gr, goff := DecodePtr(EncodePtr(rid, off))
		return gr == rid && goff == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAccessMatrix checks §2.1's access rules exhaustively for three
// regions: normal mode reaches only unsafe memory, an enclave reaches
// itself and unsafe memory, never a sibling enclave.
func TestAccessMatrix(t *testing.T) {
	cases := []struct {
		mode   Mode
		target RegionID
		want   bool
	}{
		{Unsafe, Unsafe, true},
		{Unsafe, 1, false},
		{Unsafe, 2, false},
		{1, Unsafe, true},
		{1, 1, true},
		{1, 2, false},
		{2, 1, false},
		{2, 2, true},
	}
	for _, c := range cases {
		if got := CanAccess(c.mode, c.target); got != c.want {
			t.Errorf("CanAccess(%d, %d) = %v, want %v", c.mode, c.target, got, c.want)
		}
	}
}

func TestRegionGrowth(t *testing.T) {
	r := NewRegion(1, "blue")
	off := r.Alloc(1 << 20) // force growth
	data := make([]byte, 1<<20)
	data[0], data[len(data)-1] = 0xAA, 0xBB
	r.Store(off, data)
	out := make([]byte, 1<<20)
	r.Load(off, out)
	if out[0] != 0xAA || out[len(out)-1] != 0xBB {
		t.Error("large store/load roundtrip failed")
	}
	if r.Used() < 1<<20 {
		t.Errorf("Used() = %d", r.Used())
	}
}

func TestAllocAlignment(t *testing.T) {
	r := NewRegion(0, "u")
	for i := int64(1); i < 20; i++ {
		if off := r.Alloc(i); off%8 != 0 {
			t.Fatalf("Alloc(%d) = %d, not 8-aligned", i, off)
		}
	}
}

func TestCheckedAccess(t *testing.T) {
	as := NewAddressSpace("blue", "red")
	blueAddr := EncodePtr(1, as.Region(1).Alloc(8))
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	// Owner writes fine.
	if err := as.CheckedStore(1, blueAddr, buf); err != nil {
		t.Fatal(err)
	}
	// Normal mode is rejected.
	if err := as.CheckedLoad(Unsafe, blueAddr, buf); err == nil {
		t.Error("normal mode read enclave memory")
	}
	// The sibling enclave is rejected.
	if err := as.CheckedStore(2, blueAddr, buf); err == nil {
		t.Error("red wrote blue memory")
	}
	var ae *AccessError
	err := as.CheckedLoad(2, blueAddr, buf)
	if !asErr(err, &ae) || ae.Mode != 2 || ae.Target != 1 {
		t.Errorf("AccessError wrong: %v", err)
	}
}

func asErr(err error, target **AccessError) bool {
	ae, ok := err.(*AccessError)
	if ok {
		*target = ae
	}
	return ok
}

func TestMachinePresets(t *testing.T) {
	a, b := MachineA(), MachineB()
	if a.SGXv2 || !b.SGXv2 {
		t.Error("SGX versions wrong")
	}
	if a.EPCBytes != 93<<20 {
		t.Errorf("machine A EPC = %d", a.EPCBytes)
	}
	if b.EPCBytes != 8131<<20 {
		t.Errorf("machine B EPC = %d", b.EPCBytes)
	}
	if a.Cost.EnclaveMissFactor < 5.6 || a.Cost.EnclaveMissFactor > 9.5 {
		t.Errorf("enclave miss factor %.1f outside Eleos's 5.6-9.5 band", a.Cost.EnclaveMissFactor)
	}
	// The paper's core performance claim: Privagic's lock-free queue hop
	// is cheaper than the SDK's lock-based switchless call, which is
	// cheaper than a full transition.
	if !(a.Cost.QueueMessage < a.Cost.SwitchlessCall && a.Cost.SwitchlessCall < a.Cost.EnclaveTransition) {
		t.Error("cost ordering queue < switchless < transition violated")
	}
}

func TestMeter(t *testing.T) {
	m := MachineA()
	var mt Meter
	mt.ChargeTransition(&m.Cost)
	mt.ChargeMessage(&m.Cost)
	mt.ChargeSyscall(&m.Cost, Unsafe)
	mt.ChargeSyscall(&m.Cost, 1)
	mt.ChargePageFault(&m.Cost)
	tr, msg, sys, pf := mt.Counts()
	if tr != 1 || msg != 1 || sys != 2 || pf != 1 {
		t.Errorf("Counts = %d %d %d %d", tr, msg, sys, pf)
	}
	want := m.Cost.EnclaveTransition + m.Cost.QueueMessage +
		m.Cost.Syscall + m.Cost.SyscallFromEnclave + m.Cost.EPCPageFault
	if mt.Cycles() != want {
		t.Errorf("Cycles = %d, want %d", mt.Cycles(), want)
	}
	mt.Reset()
	if mt.Cycles() != 0 {
		t.Error("Reset failed")
	}
	if s := m.SecondsFor(3_000_000_000); s < 0.99 || s > 1.01 {
		t.Errorf("SecondsFor(3G cycles at 3GHz) = %f, want ~1s", s)
	}
}
