package sources

// The walkthrough programs of the paper's exposition, shared by the
// examples/ directory, the static-audit benchmark, and the golden-file
// diagnostic tests so there is a single source of truth for each listing.

// Figure6 is the paper's complete Figure 6/7 example: an untrusted
// global, two enclave colors, and a call chain whose Free result flows
// back to the U block over a cont message (Figure 7's c5).
const Figure6 = `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`

// Wallet is the quickstart program: a single "vault" color whose secret
// leaves the enclave only through the ignore-annotated declassification
// (paper §6.4).
const Wallet = `
ignore long reveal(long color(vault) v);

long color(vault) balance = 0;

entry void deposit(long color(vault) cents) {
	balance = balance + cents;
}

entry long audit() {
	return reveal(balance);
}
`

// Figure3a is the motivation program as a data-flow baseline sees it:
// only the parameter s is (externally) marked sensitive.
const Figure3a = `
int a;
int b;
int* x;

void f(int s) {
	x = &a;
	*x = s;
}
void g() {
	x = &b;
}
`

// Figure3b is the same program with Privagic's explicit secure types;
// the secure type system rejects it at compile time because the blue
// pointer x can be retargeted at the uncolored b.
const Figure3b = `
int color(blue) a;
int b;
int color(blue)* x;

void f(int color(blue) s) {
	x = &a;
	*x = s;
}
void g() {
	x = &b;
}
`
