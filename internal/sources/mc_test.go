package sources

import (
	"testing"

	"privagic/internal/typing"
)

// TestMemcachedCoreMatchesPlain checks the §9.2 port end to end in
// hardened mode, as the paper generated it.
func TestMemcachedCoreMatchesPlain(t *testing.T) {
	want := runProgram(t, "mc-plain", MemcachedCorePlain, typing.Hardened)
	got := runProgram(t, "mc-colored", MemcachedCoreColored, typing.Hardened)
	if want == 0 {
		t.Fatal("plain memcached core produced 0 hits")
	}
	if got != want {
		t.Errorf("colored memcached core returns %d, plain returns %d", got, want)
	}
}
