package sources

import (
	"testing"

	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/typing"
)

// TestMemcachedScaffoldTypeChecks analyzes EVERY function of the colored
// memcached core (including the protocol scaffold) in hardened mode.
func TestMemcachedScaffoldTypeChecks(t *testing.T) {
	mod, err := minic.Compile("mc.c", MemcachedCoreColored)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	entries := []string{"run_ycsb", "dispatch", "stats_total", "checksum", "mc_items"}
	an := typing.Analyze(mod, typing.Options{Mode: typing.Hardened, Entries: entries})
	if err := an.Err(); err != nil {
		t.Fatalf("scaffold does not type-check: %v", err)
	}
}
