// Package sources holds the MiniC programs of the evaluation: the three
// data structures of §9.3 (linked list, treemap, hashmap) and the
// memcached core of §9.2, each in an unprotected variant and in the
// colored variant a developer would write for Privagic. The pairs drive
// three experiments:
//
//   - engineering effort (§9.2.1, §9.3.1): the line diff between the two
//     variants is the paper's "modified lines of code" metric;
//   - Table 4: the colored memcached core's partition yields the TCB
//     numbers;
//   - correctness: every colored variant compiles through the full
//     pipeline and runs on the simulated SGX machine with the same
//     results as its unprotected twin.
//
// Each program embeds a deterministic YCSB-style driver (an LCG over a
// small keyspace) because in hardened mode an enclave may not branch on
// untrusted inputs: like the paper's C reimplementation of YCSB (§9.3),
// the load generator is part of the program, so keys are Free values that
// every chunk replicates.
package sources

// ListPlain is the unprotected linked-list map.
const ListPlain = `
ignore void declassify(char* dst, char* src, long n);
struct node { long key; char value[64]; struct node* next; };
struct node* head;
char out[64];

void map_put(long k, char* v) {
	struct node* n = head;
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = head;
	head = n;
}
long map_get(long k) {
	struct node* n = head;
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 42;
	long hits = 0;
	char buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// ListColored is the Privagic port of the list: the paper reports at most
// 5 modified lines for the single-color structures (§9.3.1).
const ListColored = `
ignore void declassify(char* dst, char color(blue)* src, long n);
struct node { long color(blue) key; char color(blue) value[64]; struct node color(blue)* next; };
struct node color(blue)* color(blue) head;
char out[64];

void map_put(long k, char color(blue)* v) {
	struct node color(blue)* n = head;
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = head;
	head = n;
}
long map_get(long k) {
	struct node color(blue)* n = head;
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 42;
	long hits = 0;
	char color(blue) buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// TreemapPlain is the unprotected binary-search-tree map (the paper's
// balanced treemap stands in for any pointer-chasing tree; balancing does
// not change the coloring story).
const TreemapPlain = `
ignore void declassify(char* dst, char* src, long n);
struct node { long key; char value[64]; struct node* left; struct node* right; };
struct node* root;
char out[64];

void map_put(long k, char* v) {
	struct node* n = root;
	struct node* parent = 0;
	long goleft = 0;
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		parent = n;
		if (k < n->key) { goleft = 1; n = n->left; }
		else { goleft = 0; n = n->right; }
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->left = 0;
	n->right = 0;
	if (parent == 0) { root = n; return; }
	if (goleft) { parent->left = n; } else { parent->right = n; }
}
long map_get(long k) {
	struct node* n = root;
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		if (k < n->key) { n = n->left; } else { n = n->right; }
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 7;
	long hits = 0;
	char buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// TreemapColored is the Privagic port of the treemap.
const TreemapColored = `
ignore void declassify(char* dst, char color(blue)* src, long n);
struct node { long color(blue) key; char color(blue) value[64]; struct node color(blue)* left; struct node color(blue)* right; };
struct node color(blue)* color(blue) root;
char out[64];

void map_put(long k, char color(blue)* v) {
	struct node color(blue)* n = root;
	struct node color(blue)* parent = 0;
	long goleft = 0;
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		parent = n;
		if (k < n->key) { goleft = 1; n = n->left; }
		else { goleft = 0; n = n->right; }
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->left = 0;
	n->right = 0;
	if (parent == 0) { root = n; return; }
	if (goleft) { parent->left = n; } else { parent->right = n; }
}
long map_get(long k) {
	struct node color(blue)* n = root;
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		if (k < n->key) { n = n->left; } else { n = n->right; }
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 7;
	long hits = 0;
	char color(blue) buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// HashmapPlain is the unprotected separate-chaining hashmap (§9.3: "an
// array of linked lists, in which each linked list contains the keys that
// collide").
const HashmapPlain = `
ignore void declassify(char* dst, char* src, long n);
struct node { long key; char value[64]; struct node* next; };
struct node* buckets[64];
char out[64];

long bucket_of(long k) {
	return ((k * 2654435761) >> 4) & 63;
}
void map_put(long k, char* v) {
	long h = bucket_of(k);
	struct node* n = buckets[h];
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = buckets[h];
	buckets[h] = n;
}
long map_get(long k) {
	long h = bucket_of(k);
	struct node* n = buckets[h];
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 99;
	long hits = 0;
	char buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// HashmapColored1 is the single-color Privagic port of the hashmap.
const HashmapColored1 = `
ignore void declassify(char* dst, char color(blue)* src, long n);
struct node { long color(blue) key; char color(blue) value[64]; struct node color(blue)* next; };
struct node color(blue)* color(blue) buckets[64];
char out[64];

long bucket_of(long k) {
	return ((k * 2654435761) >> 4) & 63;
}
void map_put(long k, char color(blue)* v) {
	long h = bucket_of(k);
	struct node color(blue)* n = buckets[h];
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = buckets[h];
	buckets[h] = n;
}
long map_get(long k) {
	long h = bucket_of(k);
	struct node color(blue)* n = buckets[h];
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 99;
	long hits = 0;
	char color(blue) buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// HashmapColored2 is the two-color Privagic port of §9.3 (Figure 10): the
// keys live in the red enclave and the values in the blue enclave, built
// in relaxed mode on a multi-color structure (§7.2). As in the paper, the
// red key comparison must be declassified before it may gate blue code
// ("1 line to declassify the result of a call to a hash function" plus the
// get declassifications).
const HashmapColored2 = `
ignore void declassify(char* dst, char color(blue)* src, long n);
ignore long reveal(long color(red) v);
struct node { long color(red) key; char color(blue) value[64]; struct node* next; };
struct node* buckets[64];
char out[64];

long bucket_of(long k) {
	return ((k * 2654435761) >> 4) & 63;
}
void map_put(long k, char color(blue)* v) {
	long h = bucket_of(k);
	struct node* n = buckets[h];
	while (n != 0) {
		if (reveal(n->key == k)) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct node));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = buckets[h];
	buckets[h] = n;
}
long map_get(long k) {
	long h = bucket_of(k);
	struct node* n = buckets[h];
	while (n != 0) {
		if (reveal(n->key == k)) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
entry long run_ycsb() {
	long seed = 99;
	long hits = 0;
	char color(blue) buf[64];
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { map_put(key, buf); }
		else { hits = hits + map_get(key); }
	}
	return hits;
}
`

// MemcachedCorePlain is the unprotected core of the mini-memcached of
// §9.2: the central chained hash table with set/get/delete, sized down
// (64-byte values, 256 buckets) but structurally identical to the store
// that internal/memcached serves over TCP.
const MemcachedCorePlain = `
struct item { long key; char value[64]; struct item* next; };
struct item* table[256];
char out[64];
char inbuf[64];
long items = 0;

long hash_of(long k) {
	return (k * 2654435761) & 255;
}
void mc_set(long k, char* v) {
	long h = hash_of(k);
	struct item* n = table[h];
	while (n != 0) {
		if (n->key == k) { memcpy(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct item));
	n->key = k;
	memcpy(n->value, v, 64);
	n->next = table[h];
	table[h] = n;
	items = items + 1;
}
long mc_get(long k) {
	long h = hash_of(k);
	struct item* n = table[h];
	while (n != 0) {
		if (n->key == k) { memcpy(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
long mc_items() {
	return items;
}

long req_op[1];
long req_key[1];
char req_val[64];
long stat_gets = 0;
long stat_sets = 0;
long stat_bad = 0;

long parse_digit(char c) {
	if (c < '0') { return -1; }
	if (c > '9') { return -1; }
	return c - '0';
}
long parse_number(char* s, long n) {
	long v = 0;
	for (long i = 0; i < n; i++) {
		long d = parse_digit(s[i]);
		if (d < 0) { return v; }
		v = v * 10 + d;
	}
	return v;
}
long parse_request(char* line, long n) {
	if (n < 4) { stat_bad = stat_bad + 1; return 0; }
	if (line[0] == 'g') {
		req_op[0] = 1;
		req_key[0] = parse_number(line + 4, n - 4);
		stat_gets = stat_gets + 1;
		return 1;
	}
	if (line[0] == 's') {
		req_op[0] = 2;
		req_key[0] = parse_number(line + 4, n - 4);
		stat_sets = stat_sets + 1;
		return 1;
	}
	stat_bad = stat_bad + 1;
	return 0;
}
long format_response(char* dst, long hit, long nbytes) {
	long i = 0;
	if (hit) {
		dst[0] = 'V'; dst[1] = 'A'; dst[2] = 'L'; dst[3] = ' ';
		i = 4;
		long v = nbytes;
		while (v > 0) { dst[i] = '0' + (v % 10); v = v / 10; i = i + 1; }
	} else {
		dst[0] = 'E'; dst[1] = 'N'; dst[2] = 'D';
		i = 3;
	}
	dst[i] = 0;
	return i;
}
long checksum(char* p, long n) {
	long sum = 0;
	for (long i = 0; i < n; i++) { sum = (sum * 31 + p[i]) & 16777215; }
	return sum;
}
long stats_total() {
	return stat_gets + stat_sets + stat_bad;
}
long dispatch(char* line, long n, char* resp) {
	if (parse_request(line, n) == 0) { return format_response(resp, 0, 0); }
	if (req_op[0] == 1) {
		long hit = mc_get(req_key[0]);
		return format_response(resp, hit, 64);
	}
	mc_set(req_key[0], req_val);
	return format_response(resp, 1, 0);
}
entry long run_ycsb() {
	long seed = 11;
	long hits = 0;
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { mc_set(key, inbuf); }
		else { hits = hits + mc_get(key); }
	}
	return hits;
}
`

// MemcachedCoreColored is the Privagic port: the central map is colored
// (paper §9.2: "2 [lines] to add the colors to the central map, and 7 to
// declassify the values"), compiled in hardened mode as in the paper. Keys
// enter the enclave through annotated entry parameters and values through
// ignore-annotated classify/declassify copies (§6.4).
const MemcachedCoreColored = `
ignore void classify(char color(store)* dst, char* src, long n);
ignore void declassify(char* dst, char color(store)* src, long n);
ignore long reveal(long color(store) v);
ignore void classify_key(long color(store)* dst, long* src);
long color(store) kslot;
struct item { long color(store) key; char color(store) value[64]; struct item color(store)* next; };
struct item color(store)* color(store) table[256];
char out[64];
char inbuf[64];
long color(store) items = 0;

long hash_of(long k) {
	return (k * 2654435761) & 255;
}
void mc_set(long color(store) k, char* v) {
	long h = hash_of(k);
	struct item color(store)* n = table[h];
	while (n != 0) {
		if (n->key == k) { classify(n->value, v, 64); return; }
		n = n->next;
	}
	n = malloc(sizeof(struct item));
	n->key = k;
	classify(n->value, v, 64);
	n->next = table[h];
	table[h] = n;
	items = items + 1;
}
long mc_get(long color(store) k) {
	long h = hash_of(k);
	struct item color(store)* n = table[h];
	while (n != 0) {
		if (n->key == k) { declassify(out, n->value, 64); return 1; }
		n = n->next;
	}
	return 0;
}
long mc_items() {
	return reveal(items);
}

long req_op[1];
long req_key[1];
char req_val[64];
long stat_gets = 0;
long stat_sets = 0;
long stat_bad = 0;

long parse_digit(char c) {
	if (c < '0') { return -1; }
	if (c > '9') { return -1; }
	return c - '0';
}
long parse_number(char* s, long n) {
	long v = 0;
	for (long i = 0; i < n; i++) {
		long d = parse_digit(s[i]);
		if (d < 0) { return v; }
		v = v * 10 + d;
	}
	return v;
}
long parse_request(char* line, long n) {
	if (n < 4) { stat_bad = stat_bad + 1; return 0; }
	if (line[0] == 'g') {
		req_op[0] = 1;
		req_key[0] = parse_number(line + 4, n - 4);
		stat_gets = stat_gets + 1;
		return 1;
	}
	if (line[0] == 's') {
		req_op[0] = 2;
		req_key[0] = parse_number(line + 4, n - 4);
		stat_sets = stat_sets + 1;
		return 1;
	}
	stat_bad = stat_bad + 1;
	return 0;
}
long format_response(char* dst, long hit, long nbytes) {
	long i = 0;
	if (hit) {
		dst[0] = 'V'; dst[1] = 'A'; dst[2] = 'L'; dst[3] = ' ';
		i = 4;
		long v = nbytes;
		while (v > 0) { dst[i] = '0' + (v % 10); v = v / 10; i = i + 1; }
	} else {
		dst[0] = 'E'; dst[1] = 'N'; dst[2] = 'D';
		i = 3;
	}
	dst[i] = 0;
	return i;
}
long checksum(char* p, long n) {
	long sum = 0;
	for (long i = 0; i < n; i++) { sum = (sum * 31 + p[i]) & 16777215; }
	return sum;
}
long stats_total() {
	return stat_gets + stat_sets + stat_bad;
}
long dispatch(char* line, long n, char* resp) {
	if (parse_request(line, n) == 0) { return format_response(resp, 0, 0); }
	classify_key(&kslot, req_key);
	long k = kslot;
	if (req_op[0] == 1) {
		long hit = reveal(mc_get(k));
		return format_response(resp, hit, 64);
	}
	mc_set(k, req_val);
	return format_response(resp, 1, 0);
}
entry long run_ycsb() {
	long seed = 11;
	long hits = 0;
	for (long i = 0; i < 600; i++) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		long key = seed % 40;
		if ((seed & 15) < 8) { mc_set(key, inbuf); }
		else { hits = hits + mc_get(key); }
	}
	return hits;
}
`
