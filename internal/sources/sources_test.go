package sources

import (
	"testing"

	"privagic/internal/interp"
	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/partition"
	"privagic/internal/passes"
	"privagic/internal/sgx"
	"privagic/internal/typing"
)

// runProgram compiles and runs one MiniC program, returning run_ycsb's
// result.
func runProgram(t *testing.T, name, src string, mode typing.Mode) int64 {
	t.Helper()
	mod, err := minic.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: mode, Entries: []string{"run_ycsb"}})
	if err := an.Err(); err != nil {
		t.Fatalf("%s: typing: %v", name, err)
	}
	prog, err := partition.Partition(an)
	if err != nil {
		t.Fatalf("%s: partition: %v", name, err)
	}
	ip := interp.New(prog, sgx.MachineA())
	defer ip.Close()
	ret, err := ip.Call("run_ycsb")
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return ret
}

// TestColoredVariantsMatchPlain runs every colored data structure and
// checks it computes exactly what its unprotected twin computes — the
// partition must preserve semantics.
func TestColoredVariantsMatchPlain(t *testing.T) {
	cases := []struct {
		name         string
		plain, color string
		coloredMode  typing.Mode
	}{
		{"list", ListPlain, ListColored, typing.Hardened},
		{"treemap", TreemapPlain, TreemapColored, typing.Hardened},
		{"hashmap1", HashmapPlain, HashmapColored1, typing.Hardened},
		{"hashmap2", HashmapPlain, HashmapColored2, typing.Relaxed},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want := runProgram(t, tc.name+"-plain", tc.plain, typing.Hardened)
			got := runProgram(t, tc.name+"-colored", tc.color, tc.coloredMode)
			if want == 0 {
				t.Fatalf("plain variant produced 0 hits; driver broken")
			}
			if got != want {
				t.Errorf("colored returns %d, plain returns %d", got, want)
			}
		})
	}
}

// TestColoredHashmapUsesEnclave checks that the colored hashmap really
// places the map in an enclave: the blue region must hold the node data.
func TestColoredHashmapUsesEnclave(t *testing.T) {
	mod, err := minic.Compile("hm.c", HashmapColored1)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: typing.Hardened, Entries: []string{"run_ycsb"}})
	if err := an.Err(); err != nil {
		t.Fatal(err)
	}
	prog, err := partition.Partition(an)
	if err != nil {
		t.Fatal(err)
	}
	ip := interp.New(prog, sgx.MachineA())
	defer ip.Close()
	if _, err := ip.Call("run_ycsb"); err != nil {
		t.Fatal(err)
	}
	blueIdx := prog.ColorIndex(analysisColor(an))
	blue := ip.RT.Space.Region(sgx.RegionID(blueIdx))
	if blue.Used() == 0 {
		t.Error("blue enclave region holds no data; the map was not placed inside")
	}
	_, messages, _, _ := ip.RT.Meter.Counts()
	if messages == 0 {
		t.Error("no queue messages; the partition did not use the runtime")
	}
}

func analysisColor(an *typing.Analysis) ir.Color { return an.Colors[0] }
