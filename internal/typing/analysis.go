package typing

import (
	"fmt"
	"sort"

	"privagic/internal/ir"
)

// Analyze runs the secure type system over a module and returns the
// analysis result, including any type errors. The module must already be in
// SSA form (run passes.RunAll first); Analyze itself does not mutate the
// input module — every specialized instance works on a private clone.
func Analyze(mod *ir.Module, opts Options) *Analysis {
	if opts.Mode == 0 {
		opts.Mode = Hardened
	}
	a := &Analysis{
		Mod:   mod,
		Mode:  opts.Mode,
		Specs: map[string]*FuncSpec{},
		softU: map[any]bool{},
	}
	a.collectColors()

	entries := a.entryFunctions(opts)

	// Stabilizing algorithm (paper §5.2): run full passes over the whole
	// IR until a pass infers no new color.
	for {
		a.changed = false
		a.Errors = a.Errors[:0]

		for _, fn := range entries {
			s := a.entrySpec(fn)
			if !containsSpec(a.Entries, s) {
				a.Entries = append(a.Entries, s)
			}
		}
		// Analyze every spec; the map can grow while we iterate, so
		// loop until a sweep adds nothing.
		for {
			before := len(a.Specs)
			for _, key := range sortedKeys(a.Specs) {
				a.analyzeSpec(a.Specs[key])
			}
			if len(a.Specs) == before {
				break
			}
		}
		a.passes++
		if !a.changed || a.passes > 64 {
			break
		}
	}
	// Structure-level checks run once, outside the pass loop (the loop
	// resets per-pass diagnostics).
	a.curSpec, a.curBlock, a.curInstr = nil, -1, -1
	a.checkStructs()
	a.prune()
	a.sortErrors()
	return a
}

// sortErrors orders the diagnostics by function, block index, then
// instruction index (ties broken by kind and message), so multi-error
// output — and the golden diagnostic files built on it — is stable across
// map-iteration order.
func (a *Analysis) sortErrors() {
	sort.SliceStable(a.Errors, func(i, j int) bool {
		x, y := a.Errors[i], a.Errors[j]
		if x.Fn != y.Fn {
			return x.Fn < y.Fn
		}
		if x.BlockIdx != y.BlockIdx {
			return x.BlockIdx < y.BlockIdx
		}
		if x.InstrIdx != y.InstrIdx {
			return x.InstrIdx < y.InstrIdx
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Msg < y.Msg
	})
}

// changed is set whenever the current pass assigns a new color.
func (a *Analysis) setChanged() { a.changed = true }

func containsSpec(l []*FuncSpec, s *FuncSpec) bool {
	for _, x := range l {
		if x == s {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]*FuncSpec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// entryFunctions resolves the entry-point set.
func (a *Analysis) entryFunctions(opts Options) []*ir.Function {
	if len(opts.Entries) > 0 {
		var out []*ir.Function
		for _, name := range opts.Entries {
			if fn := a.Mod.Func(name); fn != nil && !fn.External {
				out = append(out, fn)
			} else {
				a.errorf(ErrStructure, ir.Pos{}, name, "entry point %s is not a defined function", name)
			}
		}
		return out
	}
	return a.Mod.EntryPoints()
}

// entrySpec creates (or retrieves) the spec of an entry point: parameters
// take their declared colors, or U (hardened) / F (relaxed) per §6.2.
func (a *Analysis) entrySpec(fn *ir.Function) *FuncSpec {
	colors := make([]ir.Color, len(fn.Params))
	for i, p := range fn.Params {
		if !p.Color.IsNone() {
			colors[i] = p.Color
		} else {
			colors[i] = a.entryArgColor()
		}
	}
	s := a.getSpec(fn, colors)
	s.IsEntry = true
	return s
}

// getSpec memoizes function specialization by (name, argument colors).
func (a *Analysis) getSpec(fn *ir.Function, argColors []ir.Color) *FuncSpec {
	key := SpecKey(fn.FName, argColors)
	if s := a.Specs[key]; s != nil {
		return s
	}
	clone, _ := ir.CloneFunction(fn, fn.FName)
	s := &FuncSpec{
		Orig:       fn,
		Fn:         clone,
		Key:        key,
		ArgColors:  append([]ir.Color(nil), argColors...),
		RegColor:   map[ir.Value]ir.Color{},
		InstrColor: map[ir.Instr]ir.Color{},
		BlockColor: map[*ir.Block]ir.Color{},
		RetColor:   ir.F,
		CallTarget: map[*ir.Call]*FuncSpec{},
	}
	for i, p := range clone.Params {
		if !argColors[i].IsFree() {
			s.RegColor[p] = argColors[i]
		}
	}
	if !fn.RetColor.IsNone() {
		s.RetColor = fn.RetColor
	}
	a.Specs[key] = s
	a.setChanged()
	return s
}

// analyzeSpec runs one pass of the rules over a specialized function.
func (a *Analysis) analyzeSpec(s *FuncSpec) {
	fn := s.Fn
	if fn.External || len(fn.Blocks) == 0 {
		return
	}
	fn.ComputeCFG()
	a.curSpec = s
	a.blockColors(s)
	for bi, b := range fn.Blocks {
		for ii, in := range b.Instrs {
			a.curBlock, a.curInstr = bi, ii
			a.visitInstr(s, b, in)
		}
	}
	a.curSpec, a.curBlock, a.curInstr = nil, -1, -1
}

// errorf records a diagnostic.
func (a *Analysis) errorf(kind ErrKind, pos ir.Pos, fn string, format string, args ...any) {
	a.errorv(kind, pos, fn, nil, format, args...)
}

// errorv records a diagnostic about a specific offending value, which the
// provenance engine uses to reconstruct the backward leak trace.
func (a *Analysis) errorv(kind ErrKind, pos ir.Pos, fn string, val ir.Value, format string, args ...any) {
	a.Errors = append(a.Errors, &TypeError{
		Kind: kind, Pos: pos, Fn: fn, Msg: fmt.Sprintf(format, args...),
		Val: val, Spec: a.curSpec, BlockIdx: a.curBlock, InstrIdx: a.curInstr,
	})
}

// colorOf returns the color of a value in a spec. Constants and function
// references are F; pointer-producing sources (globals, allocas, mallocs,
// field and index addresses) were colored when visited; everything else
// defaults to F until inference assigns it (Table 2).
func (a *Analysis) colorOf(s *FuncSpec, v ir.Value) ir.Color {
	switch v.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.Null, *ir.Function, *ir.Global:
		// Addresses known from the program text are Free values: the
		// address of a blue global is just a number any chunk may
		// compute. The fourth confidentiality rule of §4 ("a pointer
		// to a C location is itself C") is the *static* pointer-type
		// discipline enforced by checkStaticColors, exactly as the
		// paper compares it to float*/int* typing (§3). Values
		// *loaded* from colored memory do take the memory's color
		// (Rule 1).
		return ir.F
	}
	if c, ok := s.RegColor[v]; ok {
		return c
	}
	return ir.F
}

// assignReg implements "x ← ȳ" from Table 3: check compatibility, and give
// the register the concrete color when it is still F.
func (a *Analysis) assignReg(s *FuncSpec, v ir.Value, c ir.Color, pos ir.Pos, what string) {
	if c.IsFree() || c.IsNone() {
		return
	}
	switch v.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.Null, *ir.Function, *ir.Global:
		return
	}
	cur, ok := s.RegColor[v]
	if !ok || cur.IsFree() {
		s.RegColor[v] = c
		a.setChanged()
		return
	}
	if cur == ir.U && a.softU[v] && c.IsEnclave() {
		// Upgrade a defaulted U once inference finds the real enclave.
		s.RegColor[v] = c
		delete(a.softU, v)
		a.setChanged()
		return
	}
	if cur != c {
		a.errorv(ErrIncompatible, pos, s.Fn.FName, v,
			"%s: register %s has color %s but is required to be %s", what, v.Name(), cur, c)
	}
}

// checkCompat implements "x̄ ~ ȳ" from Table 3.
func (a *Analysis) checkCompat(s *FuncSpec, x, y ir.Color, kind ErrKind, pos ir.Pos, format string, args ...any) bool {
	return a.checkCompatv(s, x, y, nil, kind, pos, format, args...)
}

// checkCompatv is checkCompat carrying the offending value for the leak
// trace.
func (a *Analysis) checkCompatv(s *FuncSpec, x, y ir.Color, val ir.Value, kind ErrKind, pos ir.Pos, format string, args ...any) bool {
	if ir.Compatible(x, y) {
		return true
	}
	a.errorv(kind, pos, s.Fn.FName, val, format, args...)
	return false
}

// setInstrColor places an instruction in an enclave ("ins ← c̄", fourth
// column of Table 3).
func (a *Analysis) setInstrColor(s *FuncSpec, in ir.Instr, c ir.Color) {
	if c.IsNone() {
		c = ir.F
	}
	cur, ok := s.InstrColor[in]
	if !ok {
		s.InstrColor[in] = c
		if !c.IsFree() {
			a.setChanged()
		}
		return
	}
	if cur.IsFree() && !c.IsFree() {
		s.InstrColor[in] = c
		a.setChanged()
		return
	}
	if cur == ir.U && a.softU[in] && c.IsEnclave() {
		s.InstrColor[in] = c
		delete(a.softU, in)
		a.setChanged()
		return
	}
	if !c.IsFree() && cur != c {
		a.errorf(ErrIncompatible, in.InstrPos(), s.Fn.FName,
			"instruction %q belongs to both %s and %s", in.String(), cur, c)
	}
}

// staticPointee returns the resolved color of the memory a pointer-typed
// value points at ("*p̄" in Table 3).
func (a *Analysis) staticPointee(t ir.Type) ir.Color {
	pt, ok := t.(ir.PointerType)
	if !ok {
		return a.unsafeLoc()
	}
	return a.resolveLoc(pt.Color)
}

// visitInstr applies the Table 3 rules to one instruction.
func (a *Analysis) visitInstr(s *FuncSpec, b *ir.Block, in ir.Instr) {
	pos := in.InstrPos()
	switch t := in.(type) {
	case *ir.Alloca:
		c := a.resolveLoc(t.Color)
		if c.Kind == ir.KindShared {
			a.setInstrColor(s, in, ir.U)
		} else {
			a.setInstrColor(s, in, c)
		}

	case *ir.Malloc:
		c := a.resolveLoc(t.Color)
		if c.Kind == ir.KindShared {
			a.setInstrColor(s, in, ir.U)
		} else {
			a.setInstrColor(s, in, c)
		}
		if t.Count != nil {
			a.checkCompatv(s, a.colorOf(s, t.Count), c, t.Count, ErrIago, pos,
				"allocation count of color %s used for %s allocation", a.colorOf(s, t.Count), c)
		}

	case *ir.Free:
		pc := a.staticPointee(t.Ptr.Type())
		p := a.colorOf(s, t.Ptr)
		a.checkCompatv(s, p, pc, t.Ptr, ErrIncompatible, pos, "free: pointer color %s incompatible with pointee %s", p, pc)
		if pc.Kind == ir.KindShared {
			a.setInstrColor(s, in, ir.U)
		} else {
			a.setInstrColor(s, in, pc)
		}

	case *ir.Load:
		// Rule 1: *p̄ ~ p̄  ∧  (*p̄ ≠ S ⇒ r ← *p̄); ins ← *p̄.
		pc := a.staticPointee(t.Ptr.Type())
		p := a.colorOf(s, t.Ptr)
		a.checkCompatv(s, p, pc, t.Ptr, ErrIago, pos,
			"load: pointer of color %s dereferences %s memory", p, pc)
		if pc.Kind == ir.KindShared {
			// Loading from shared memory yields a Free value
			// (Table 2), and the load is replicated with it.
			a.setInstrColor(s, in, ir.F)
		} else {
			a.assignReg(s, t, pc, pos, "load")
			a.setInstrColor(s, in, pc)
		}

	case *ir.Store:
		// Rule 3: *p̄ ~ p̄ ∧ r̄ ~ *p̄; ins ← *p̄.
		if pt, ok := t.Ptr.Type().(ir.PointerType); ok {
			a.checkStaticColors(s, t.Val.Type(), pt.Elem, pos, "store")
		}
		pc := a.staticPointee(t.Ptr.Type())
		p := a.colorOf(s, t.Ptr)
		v := a.colorOf(s, t.Val)
		a.checkCompatv(s, p, pc, t.Ptr, ErrIntegrity, pos,
			"store: pointer of color %s writes %s memory", p, pc)
		kind := ErrIncompatible
		if pc == ir.U || pc == ir.S {
			kind = ErrConfidentiality
		}
		a.checkCompatv(s, v, pc, t.Val, kind, pos,
			"store: value of color %s cannot be stored in %s memory", v, pc)
		if pc.Kind == ir.KindShared {
			// Visible effect in shared memory, executed in normal
			// mode with a synchronization barrier (§7.3.3).
			a.setInstrColor(s, in, ir.U)
		} else {
			a.setInstrColor(s, in, pc)
		}

	case *ir.BinOp:
		a.visitOp(s, t, pos, t.X, t.Y)
	case *ir.Cmp:
		a.visitOp(s, t, pos, t.X, t.Y)
	case *ir.Cast:
		a.checkStaticCast(s, t, pos)
		a.visitOp(s, t, pos, t.Val)

	case *ir.FieldAddr:
		a.visitOp(s, t, pos, t.X)
	case *ir.IndexAddr:
		a.visitOp(s, t, pos, t.X, t.Index)

	case *ir.Phi:
		for _, e := range t.Edges {
			c := a.colorOf(s, e.Val)
			if bc, ok := s.BlockColor[e.Pred]; ok && !bc.IsFree() {
				// A value merged out of a colored region carries
				// that region's color (Rule 4).
				c = a.meet(s, c, bc, pos, "phi edge from colored block")
			}
			a.assignReg(s, t, c, pos, "phi")
		}
		a.setInstrColor(s, in, a.colorOf(s, t))

	case *ir.Call:
		a.visitCall(s, b, t)

	case *ir.Ret:
		if t.Val != nil {
			a.checkStaticColors(s, t.Val.Type(), s.Fn.RetTyp, pos, "return")
			c := a.colorOf(s, t.Val)
			// A return reached under a colored condition makes the
			// return value carry that color (Rule 4: whether this
			// ret executes at all is sensitive information).
			if bc, ok := s.BlockColor[b]; ok && !bc.IsFree() {
				c = a.meet(s, c, bc, pos, "return in colored block")
			}
			if !c.IsFree() {
				if s.RetColor.IsFree() {
					s.RetColor = c
					a.setChanged()
				} else if s.RetColor != c {
					a.errorv(ErrIncompatible, pos, s.Fn.FName, t.Val,
						"return value color %s conflicts with earlier return color %s", c, s.RetColor)
				}
			}
			a.setInstrColor(s, in, c)
		} else {
			a.setInstrColor(s, in, ir.F)
		}

	case *ir.CondBr:
		// Placement follows the condition; Rule 4 block coloring is
		// handled in blockColors.
		a.setInstrColor(s, in, a.colorOf(s, t.Cond))
	case *ir.Br:
		a.setInstrColor(s, in, ir.F)
	}

	// Rule 4: an instruction inside a colored basic block takes the
	// block's color (x_n ← B̄; ins ← B̄).
	if bc, ok := s.BlockColor[b]; ok && !bc.IsFree() {
		if v, isVal := in.(ir.Value); isVal {
			cur := a.colorOf(s, v)
			if !cur.IsFree() && cur != bc {
				a.errorv(ErrConfidentiality, pos, s.Fn.FName, v,
					"implicit leak: %s register %s assigned inside a basic block controlled by a %s condition", cur, v.Name(), bc)
			} else {
				a.assignReg(s, v, bc, pos, "block color")
			}
		}
		cur := s.InstrColor[in]
		if !cur.IsFree() && !cur.IsNone() && cur != bc {
			var val ir.Value
			if v, isVal := in.(ir.Value); isVal {
				val = v
			}
			a.errorv(ErrConfidentiality, pos, s.Fn.FName, val,
				"implicit leak: %s instruction %q executed under a %s condition", cur, in.String(), bc)
		} else {
			a.setInstrColor(s, in, bc)
		}
	}
	a.noteIndirectOperands(s, in)
}

// visitOp implements Rule 2: r ← x̄ᵢ for every input, ins ← r̄.
func (a *Analysis) visitOp(s *FuncSpec, in ir.Instr, pos ir.Pos, xs ...ir.Value) {
	v := in.(ir.Value)
	for _, x := range xs {
		c := a.colorOf(s, x)
		cur := a.colorOf(s, v)
		if !cur.IsFree() && !c.IsFree() && cur != c {
			a.errorv(ErrIago, pos, s.Fn.FName, x,
				"instruction %q mixes inputs of colors %s and %s", in.String(), cur, c)
			continue
		}
		a.assignReg(s, v, c, pos, "operation input")
	}
	a.setInstrColor(s, in, a.colorOf(s, v))
}

// meet joins two colors, reporting an error when both are concrete and
// differ.
func (a *Analysis) meet(s *FuncSpec, x, y ir.Color, pos ir.Pos, what string) ir.Color {
	switch {
	case x.IsFree() || x.IsNone():
		return y
	case y.IsFree() || y.IsNone():
		return x
	case x == y:
		return x
	default:
		a.errorf(ErrIncompatible, pos, s.Fn.FName, "%s: colors %s and %s are incompatible", what, x, y)
		return x
	}
}
