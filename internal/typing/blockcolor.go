package typing

import (
	"privagic/internal/ir"
)

// blockColors implements Rule 4 (implicit indirect leaks, §6.1.1): when a
// conditional jump is controlled by a C register, every basic block on a
// path from the branch to its immediate post-dominator — the joining point
// of the "if" — takes the color C. The joining point itself stays
// uncolored, because it no longer carries sensitive control-flow
// information.
func (a *Analysis) blockColors(s *FuncSpec) {
	fn := s.Fn
	pdom := ir.PostDominators(fn)
	for _, b := range fn.Blocks {
		term, ok := b.Terminator().(*ir.CondBr)
		if !ok {
			continue
		}
		c := a.colorOf(s, term.Cond)
		if !c.IsEnclave() {
			// Rule 4 protects the confidentiality of the condition:
			// only enclave-colored conditions leak through control
			// flow. A U condition is attacker-known already, and
			// untrusted control over which chunks run is the spawn
			// surface the paper's §8 explicitly leaves open.
			continue
		}
		join := pdom.Idom(b)
		for _, r := range regionBlocks(b, term, join) {
			cur, has := s.BlockColor[r]
			if !has || cur.IsFree() {
				s.BlockColor[r] = c
				a.setChanged()
				continue
			}
			if cur != c {
				a.errorf(ErrIncompatible, term.InstrPos(), fn.FName,
					"basic block %%%s is controlled by both a %s and a %s condition", r.BName, cur, c)
			}
		}
	}
}

// regionBlocks returns the blocks reachable from the branch targets without
// crossing the joining point (nil join means the branch never rejoins, e.g.
// a loop around return: the whole reachable region is colored).
func regionBlocks(b *ir.Block, term *ir.CondBr, join *ir.Block) []*ir.Block {
	seen := map[*ir.Block]bool{b: true}
	if join != nil {
		seen[join] = true
	}
	var out []*ir.Block
	stack := []*ir.Block{term.Then, term.Else}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
		stack = append(stack, x.Succs()...)
	}
	return out
}
