package typing

import (
	"privagic/internal/ir"
)

// visitCall implements the call rules of §6.2–§6.4: specialization of local
// functions per argument colors, U-typing of external and indirect calls,
// enclave placement of within calls, and the argument-ignoring behaviour of
// ignore functions used for classify/declassify.
func (a *Analysis) visitCall(s *FuncSpec, b *ir.Block, c *ir.Call) {
	pos := c.InstrPos()
	callee, direct := c.Callee.(*ir.Function)
	switch {
	case direct && !callee.External:
		a.visitLocalCall(s, c, callee, pos)
	case direct && (callee.Within || callee.Ignore):
		a.visitWithinCall(s, c, callee, pos)
	case direct:
		a.visitExternalCall(s, c, callee.FName, pos)
	default:
		// Indirect call: conservatively a call into the untrusted
		// part of the application (§6.3).
		a.visitExternalCall(s, c, "<indirect>", pos)
	}
}

// visitLocalCall specializes the callee with the actual argument colors and
// propagates the callee's return color back to the call result (§6.2).
func (a *Analysis) visitLocalCall(s *FuncSpec, c *ir.Call, callee *ir.Function, pos ir.Pos) {
	argColors := make([]ir.Color, len(callee.Params))
	for i, p := range callee.Params {
		var ac ir.Color
		if i < len(c.Args) {
			ac = a.colorOf(s, c.Args[i])
			a.checkStaticColors(s, c.Args[i].Type(), p.Typ, pos, "argument")
		} else {
			ac = ir.F
		}
		if !p.Color.IsNone() {
			// Explicitly annotated parameter: the annotation wins;
			// arguments must be compatible with it.
			var val ir.Value
			if i < len(c.Args) {
				val = c.Args[i]
			}
			a.checkCompatv(s, ac, p.Color, val, ErrIncompatible, pos,
				"argument %d of @%s has color %s, parameter is declared %s", i, callee.FName, ac, p.Color)
			ac = p.Color
		}
		argColors[i] = ac
	}
	// Variadic tail arguments keep their own colors; they flow into the
	// spec key too so chunks see consistent values.
	for i := len(callee.Params); i < len(c.Args); i++ {
		argColors = append(argColors, a.colorOf(s, c.Args[i]))
	}
	target := a.getSpec(callee, argColors)
	if s.CallTarget[c] != target {
		s.CallTarget[c] = target
		a.setChanged()
	}
	a.assignReg(s, c, target.RetColor, pos, "call result")
	a.setInstrColor(s, c, a.colorOf(s, c))
}

// visitExternalCall types a call into the untrusted part: every argument
// must be compatible with unsafe memory, and the result is untrusted
// (U in hardened mode; in relaxed mode it behaves like a load from S and
// becomes F).
func (a *Analysis) visitExternalCall(s *FuncSpec, c *ir.Call, name string, pos ir.Pos) {
	for i, arg := range c.Args {
		ac := a.colorOf(s, arg)
		if ac.IsEnclave() {
			a.errorv(ErrConfidentiality, pos, s.Fn.FName, arg,
				"argument %d of external call %s carries enclave color %s", i, name, ac)
		}
		// A pointer to enclave memory handed to untrusted code is
		// only an address (SGX protects the contents), but a pointer
		// to a colored location must not be writable from outside —
		// flagged when the callee stores through it, which we cannot
		// see; the paper accepts this for plain external calls.
	}
	if a.Mode == Hardened {
		a.assignReg(s, c, ir.U, pos, "external call result")
	}
	a.setInstrColor(s, c, ir.U)
}

// visitWithinCall handles functions available inside enclaves (§6.3) and
// ignore functions (§6.4). The call executes in the single concrete enclave
// color C among the argument values and argument pointees; other arguments
// must be compatible with C unless the function is ignore.
func (a *Analysis) visitWithinCall(s *FuncSpec, c *ir.Call, callee *ir.Function, pos ir.Pos) {
	var named []ir.Color
	addNamed := func(col ir.Color) {
		if !col.IsEnclave() {
			return
		}
		for _, x := range named {
			if x == col {
				return
			}
		}
		named = append(named, col)
	}
	sawUnsafe := false
	for _, arg := range c.Args {
		ac := a.colorOf(s, arg)
		addNamed(ac)
		if ac == ir.U {
			sawUnsafe = true
		}
		if pt, ok := arg.Type().(ir.PointerType); ok {
			pc := a.resolveLoc(pt.Color)
			addNamed(pc)
			if pc == ir.U {
				sawUnsafe = true
			}
		}
	}
	if len(named) > 1 {
		a.errorf(ErrIncompatible, pos, s.Fn.FName,
			"call to %s mixes enclave colors %s and %s", callee.FName, named[0], named[1])
		return
	}
	if len(named) == 0 {
		// Purely untrusted data so far: execute outside any enclave.
		// The U here is only a default — a later stabilizing pass may
		// discover an enclave color among the arguments and upgrade.
		if a.Mode == Hardened {
			a.softU[ir.Value(c)] = true
			a.assignReg(s, c, ir.U, pos, "within call result")
		}
		a.softU[ir.Instr(c)] = true
		a.setInstrColor(s, c, ir.U)
		return
	}
	enclave := named[0]
	if !callee.Ignore {
		if sawUnsafe {
			a.errorf(ErrConfidentiality, pos, s.Fn.FName,
				"call to %s executed in %s takes unsafe (U) data; annotate %s with 'ignore' to declassify",
				callee.FName, enclave, callee.FName)
		}
		for i, arg := range c.Args {
			ac := a.colorOf(s, arg)
			a.checkCompatv(s, ac, enclave, arg, ErrIago, pos,
				"argument %d of %s has color %s, call executes in %s", i, callee.FName, ac, enclave)
			if pt, ok := arg.Type().(ir.PointerType); ok {
				pc := a.resolveLoc(pt.Color)
				if pc.Kind == ir.KindShared {
					continue // relaxed mode: enclaves may touch S
				}
				a.checkCompatv(s, pc, enclave, arg, ErrConfidentiality, pos,
					"argument %d of %s points at %s memory, call executes in %s", i, callee.FName, pc, enclave)
			}
		}
	}
	if !callee.Ignore {
		a.assignReg(s, c, enclave, pos, "within call result")
	}
	// An ignore function's result is deliberately left F: calling it is
	// the developer's declassification statement (§6.4), so the result
	// may flow anywhere — e.g. revealing whether a lookup hit before
	// branching into another enclave's code.
	a.setInstrColor(s, c, enclave)
}

// noteIndirectOperands detects defined functions used as values (their
// address taken): such functions may be called indirectly, so Privagic
// generates a version specialized for untrusted arguments (§6.3).
func (a *Analysis) noteIndirectOperands(s *FuncSpec, in ir.Instr) {
	ops := in.Ops()
	start := 0
	if call, ok := in.(*ir.Call); ok && !call.IsIndirect() {
		start = 1 // skip the direct callee position
	}
	for _, op := range ops[start:] {
		fn, ok := (*op).(*ir.Function)
		if !ok || fn.External {
			continue
		}
		colors := make([]ir.Color, len(fn.Params))
		for i, p := range fn.Params {
			if !p.Color.IsNone() {
				colors[i] = p.Color
			} else {
				colors[i] = a.entryArgColor()
			}
		}
		spec := a.getSpec(fn, colors)
		if !containsSpec(a.Indirect, spec) {
			a.Indirect = append(a.Indirect, spec)
			a.setChanged()
		}
	}
}

// prune drops specializations no longer reachable from the entry points
// (stale instances created with colors that inference later refined).
func (a *Analysis) prune() {
	live := map[*FuncSpec]bool{}
	var mark func(s *FuncSpec)
	mark = func(s *FuncSpec) {
		if live[s] {
			return
		}
		live[s] = true
		for _, t := range s.CallTarget {
			mark(t)
		}
	}
	for _, s := range a.Entries {
		mark(s)
	}
	for _, s := range a.Indirect {
		mark(s)
	}
	for k, s := range a.Specs {
		if !live[s] {
			delete(a.Specs, k)
		}
	}
}
