package typing

import (
	"testing"

	"privagic/internal/ir"
)

// This file stress-tests the secure type system on scenario programs
// beyond the paper's figures: deeper pointer nesting, arrays, loops over
// colored state, entry annotations, and mode differences.

func TestMultiLevelPointers(t *testing.T) {
	// int color(blue)** : a shared cell holding pointers to blue cells.
	src := `
int color(blue) a;
int color(blue)* p;
int color(blue)** pp;
entry void f() {
	p = &a;
	pp = &p;
	**pp = 1;
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantNoErrors(t, a)
}

func TestMultiLevelPointerMismatch(t *testing.T) {
	src := `
int color(blue) a;
int color(red)* p;
entry void f() {
	p = &a;
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantErrorContaining(t, a, "pointer to blue memory used where pointer to red memory is expected")
}

func TestColoredArrayIndexing(t *testing.T) {
	src := `
long color(blue) table[64];
entry void put(long i) {
	table[i % 64] = i;
}
`
	// Relaxed: entry args F, index F, store F value into blue: fine.
	wantNoErrors(t, analyzeSrc(t, Relaxed, src, "put"))
	// Hardened: the U index flows into the address computation; the
	// store of a U value into blue memory must be rejected.
	a := analyzeSrc(t, Hardened, src, "put")
	if len(a.Errors) == 0 {
		t.Error("hardened mode accepted a U value stored into blue memory")
	}
}

func TestAnnotatedEntryParamClassifies(t *testing.T) {
	// The paper's memcached port: annotating the entry parameter is the
	// developer-sanctioned classification boundary.
	src := `
long color(blue) table[64];
entry void put(long color(blue) k) {
	table[k % 64] = k;
}
`
	wantNoErrors(t, analyzeSrc(t, Hardened, src, "put"))
}

func TestLoopCarriedColor(t *testing.T) {
	// A blue value threaded through a loop φ keeps its color.
	src := `
long color(blue) seed;
long sink;
entry void f() {
	long x = seed;
	for (long i = 0; i < 10; i++) {
		x = x * 2;
	}
	sink = x;
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantErrorContaining(t, a, "cannot be stored in S memory")
}

func TestDeclassifiedLoopResultFlows(t *testing.T) {
	src := `
ignore long reveal(long color(blue) v);
long color(blue) seed;
long sink;
entry void f() {
	long x = seed;
	for (long i = 0; i < 10; i++) x = x * 2;
	sink = reveal(x);
}
`
	wantNoErrors(t, analyzeSrc(t, Relaxed, src, "f"))
}

func TestTwoEnclavesNeverMeet(t *testing.T) {
	src := `
long color(blue) b;
long color(red) r;
entry void f() {
	b = b + r;
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	if len(a.Errors) == 0 {
		t.Fatal("mixing blue and red accepted")
	}
	sawMix := false
	for _, e := range a.Errors {
		if e.Kind == ErrIago || e.Kind == ErrIncompatible {
			sawMix = true
		}
	}
	if !sawMix {
		t.Errorf("no mixing diagnostic: %v", a.Err())
	}
}

func TestSpecializationChain(t *testing.T) {
	// A helper called through two levels with a colored argument: the
	// specialization must propagate transitively.
	src := `
long color(blue) acc;
long double_it(long v) { return v + v; }
long quad(long v) { return double_it(double_it(v)); }
entry void f() { acc = quad(acc); }
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantNoErrors(t, a)
	spec := a.Specs[SpecKey("quad", []ir.Color{ir.Named("blue")})]
	if spec == nil {
		t.Fatal("quad(blue) not specialized")
	}
	if spec.RetColor != ir.Named("blue") {
		t.Errorf("quad(blue) returns %v", spec.RetColor)
	}
	if a.Specs[SpecKey("double_it", []ir.Color{ir.Named("blue")})] == nil {
		t.Error("double_it(blue) not specialized transitively")
	}
}

func TestSameHelperBothColors(t *testing.T) {
	src := `
long color(blue) b;
long color(red) r;
long bump(long v) { return v + 1; }
entry void f() {
	b = bump(b);
	r = bump(r);
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantNoErrors(t, a)
	if a.Specs[SpecKey("bump", []ir.Color{ir.Named("blue")})] == nil ||
		a.Specs[SpecKey("bump", []ir.Color{ir.Named("red")})] == nil {
		t.Error("bump not specialized per color")
	}
}

func TestVariadicExternalWithColoredArg(t *testing.T) {
	// printf("%d", secret) leaks through an external call.
	src := `
long color(blue) secret;
entry void f() {
	printf("%d\n", secret);
}
`
	a := analyzeSrc(t, Relaxed, src, "f")
	wantErrorContaining(t, a, "external call")
}

func TestFreeOfColoredObject(t *testing.T) {
	src := `
struct box { long color(blue) v; };
entry void f() {
	struct box color(blue)* b = malloc(sizeof(struct box));
	b->v = 1;
	free(b);
}
`
	wantNoErrors(t, analyzeSrc(t, Relaxed, src, "f"))
}

func TestRetColorConflict(t *testing.T) {
	src := `
long color(blue) b;
long color(red) r;
long pick(long which) {
	if (which) return b;
	return r;
}
entry void f() { pick(1); }
`
	a := analyzeSrc(t, Relaxed, src, "f")
	if len(a.Errors) == 0 {
		t.Error("function returning two different colors accepted")
	}
}

func TestHardenedUChainIsFine(t *testing.T) {
	// Pure untrusted computation in hardened mode needs no annotations.
	src := `
long counter;
entry void bump(long n) {
	for (long i = 0; i < n; i++) counter = counter + 1;
}
`
	wantNoErrors(t, analyzeSrc(t, Hardened, src, "bump"))
}

func TestStructSingleColorNotSplit(t *testing.T) {
	src := `
struct rec { long color(blue) a; long color(blue) b; };
struct rec color(blue)* g;
entry void f() {
	g = malloc(sizeof(struct rec));
	g->a = 1;
	g->b = 2;
}
`
	a := analyzeSrc(t, Hardened, src, "f")
	// Single color: allowed even in hardened mode (§8: the restriction
	// "does not exist with a single color").
	if len(a.Errors) != 0 {
		// g is a blue pointer stored in U memory: loading it in
		// hardened gives U, deref blue -> this NEEDS relaxed or a
		// blue location for g.
		t.Skip("hardened single-color with unsafe pointer cell is rejected; see TestStructSingleColorHardenedPlacement")
	}
}

func TestStructSingleColorHardenedPlacement(t *testing.T) {
	// The hardened-correct version keeps the pointer cell in the
	// enclave too.
	src := `
struct rec { long color(blue) a; long color(blue) b; };
struct rec color(blue)* color(blue) g;
entry void f() {
	g = malloc(sizeof(struct rec));
	g->a = 1;
	g->b = 2;
}
`
	wantNoErrors(t, analyzeSrc(t, Hardened, src, "f"))
}

func TestEntryDefaultsWhenUnmarked(t *testing.T) {
	// Without 'entry' markers every defined function is an entry (§6.2).
	src := `
long color(blue) b;
void touch() { b = b + 1; }
`
	a := analyzeSrc(t, Relaxed, src)
	wantNoErrors(t, a)
	if len(a.Entries) != 1 {
		t.Errorf("entries = %d, want 1 (touch)", len(a.Entries))
	}
}
