package typing

import (
	"sort"

	"privagic/internal/ir"
)

// checkStaticColors enforces the structural half of secure typing: a value
// of type "pointer to C memory" can only be stored in / passed as / cast to
// a pointer to memory of the same color — "exactly as storing a pointer to
// a float in a pointer to an integer is prohibited" (paper §3, Figure 3.b).
func (a *Analysis) checkStaticColors(s *FuncSpec, from, to ir.Type, pos ir.Pos, what string) {
	fp, fok := from.(ir.PointerType)
	tp, tok := to.(ir.PointerType)
	if !fok || !tok {
		return
	}
	fc := a.resolveLoc(fp.Color)
	tc := a.resolveLoc(tp.Color)
	if fc != tc {
		a.errorf(ErrConfidentiality, pos, s.Fn.FName,
			"%s: pointer to %s memory used where pointer to %s memory is expected", what, fc, tc)
		return
	}
	// Recurse through multi-level pointers (int color(blue)** etc.).
	a.checkStaticColors(s, fp.Elem, tp.Elem, pos, what)
}

// checkStaticCast enforces the fourth confidentiality rule of §4: a cast
// cannot change a color.
func (a *Analysis) checkStaticCast(s *FuncSpec, c *ir.Cast, pos ir.Pos) {
	a.checkStaticColors(s, c.Val.Type(), c.Type(), pos, "cast")
}

// checkStructs verifies the structure-level constraints: a multi-color
// struct is allowed only in relaxed mode, because the indirection it
// requires forces enclaves to load field pointers from unsafe memory
// (paper §7.2 and the §8 limitation).
func (a *Analysis) checkStructs() {
	for _, st := range a.Mod.Structs {
		colors := st.Colors()
		if len(colors) >= 2 && a.Mode == Hardened {
			a.errorf(ErrStructure, ir.Pos{}, "<module>",
				"struct %s mixes colors %s and %s: multi-color structures require relaxed mode (paper §8)",
				st.Name, colors[0], colors[1])
		}
	}
}

// collectColors gathers every named enclave color appearing in the module's
// types, globals, allocation sites and parameters.
func (a *Analysis) collectColors() {
	seen := map[ir.Color]bool{}
	add := func(c ir.Color) {
		if c.IsEnclave() && !seen[c] {
			seen[c] = true
			a.Colors = append(a.Colors, c)
		}
	}
	var addType func(t ir.Type, depth int)
	addType = func(t ir.Type, depth int) {
		if depth > 8 {
			return
		}
		switch tt := t.(type) {
		case ir.PointerType:
			add(tt.Color)
			addType(tt.Elem, depth+1)
		case ir.ArrayType:
			addType(tt.Elem, depth+1)
		case *ir.StructType:
			for _, f := range tt.Fields {
				add(f.Color)
				addType(f.Type, depth+1)
			}
		}
	}
	for _, st := range a.Mod.Structs {
		addType(st, 0)
	}
	for _, g := range a.Mod.Globals {
		add(g.Color)
		addType(g.Elem, 0)
	}
	for _, fn := range a.Mod.Funcs {
		add(fn.RetColor)
		for _, p := range fn.Params {
			add(p.Color)
			addType(p.Typ, 0)
		}
		if fn.External {
			continue
		}
		fn.Instrs(func(_ *ir.Block, in ir.Instr) {
			switch t := in.(type) {
			case *ir.Alloca:
				add(t.Color)
				addType(t.Elem, 0)
			case *ir.Malloc:
				add(t.Color)
				addType(t.Elem, 0)
			}
		})
	}
	sort.Slice(a.Colors, func(i, j int) bool { return a.Colors[i].Name < a.Colors[j].Name })
}
