// Package typing implements the secure type system of the paper (§4–§6):
// the color-propagation rules of Table 3, the initial colors of Table 2,
// the stabilizing inference algorithm of §5.2, per-call-site function
// specialization (§6.2), the external/within/ignore call rules (§6.3–§6.4),
// and the implicit-indirect-leak block coloring of Rule 4.
//
// The analysis runs after mem2reg, so the only colors left to infer are
// register colors; all remaining memory locations (globals, escaping or
// explicitly colored locals, heap objects, struct fields) carry explicit
// colors or default to unsafe memory per Table 2.
package typing

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"privagic/internal/ir"
)

// Mode selects the two compiler modes of paper §5: Hardened enforces
// confidentiality, integrity, and Iago protection (uncolored memory is U);
// Relaxed drops Iago protection (uncolored memory is S, and values loaded
// from S become F).
type Mode int

// Modes.
const (
	Hardened Mode = iota + 1
	Relaxed
)

// String returns "hardened" or "relaxed".
func (m Mode) String() string {
	if m == Hardened {
		return "hardened"
	}
	return "relaxed"
}

// ErrKind classifies type errors by the security property they protect.
type ErrKind int

// Error kinds.
const (
	ErrConfidentiality ErrKind = iota + 1 // a colored value escapes its enclave
	ErrIntegrity                          // a store into an enclave from outside
	ErrIago                               // an enclave consumes an untrusted value
	ErrIncompatible                       // two different concrete colors meet
	ErrStructure                          // malformed secure types (multi-color unions etc.)
)

var errKindNames = map[ErrKind]string{
	ErrConfidentiality: "confidentiality",
	ErrIntegrity:       "integrity",
	ErrIago:            "iago",
	ErrIncompatible:    "incompatible-colors",
	ErrStructure:       "structure",
}

// String names the error kind.
func (k ErrKind) String() string { return errKindNames[k] }

// TypeError is a secure-typing diagnostic.
type TypeError struct {
	Kind ErrKind
	Pos  ir.Pos
	Fn   string
	Msg  string

	// Val is the offending colored value, when the diagnostic is about a
	// specific SSA value (nil otherwise). Together with Spec it lets the
	// provenance engine (internal/audit) reconstruct the backward
	// def-use leak trace from the sink back to the source annotation.
	Val ir.Value
	// Spec is the specialized function instance the error was found in
	// (nil for module-level diagnostics such as structure errors).
	Spec *FuncSpec
	// BlockIdx and InstrIdx locate the sink inside Spec.Fn — the sort
	// key that makes multi-error output deterministic across
	// map-iteration order (block index, then instruction index).
	BlockIdx int
	InstrIdx int
}

// Error implements the error interface.
func (e *TypeError) Error() string {
	return fmt.Sprintf("%s: [%s] in @%s: %s", e.Pos, e.Kind, e.Fn, e.Msg)
}

// Options configures an analysis.
type Options struct {
	Mode Mode
	// Entries optionally overrides the entry-point set (function names);
	// when empty, the module's Entry-marked functions are used, or every
	// defined function when none is marked (paper §6.2).
	Entries []string
}

// FuncSpec is one specialized instance of a function: the same body may be
// analyzed several times with different argument colors (paper §6.2:
// "Privagic generates a specialized version of the function with the actual
// colors of the arguments").
type FuncSpec struct {
	Orig      *ir.Function
	Fn        *ir.Function // clone owned by this spec
	Key       string
	ArgColors []ir.Color
	IsEntry   bool

	// RegColor maps each register (instruction result or parameter) to
	// its color. Missing entries mean F.
	RegColor map[ir.Value]ir.Color
	// InstrColor maps each instruction to the enclave it is generated in
	// (F = replicated into every chunk).
	InstrColor map[ir.Instr]ir.Color
	// BlockColor carries Rule 4 colors for basic blocks.
	BlockColor map[*ir.Block]ir.Color
	// RetColor is the inferred color of the return value.
	RetColor ir.Color
	// CallTarget resolves each direct local call to its specialized
	// callee.
	CallTarget map[*ir.Call]*FuncSpec
}

// ColorSet returns the distinct non-F instruction placement colors of the
// spec, the "color set" of paper §7.3.1, sorted for determinism.
func (s *FuncSpec) ColorSet() []ir.Color {
	seen := map[ir.Color]bool{}
	var out []ir.Color
	add := func(c ir.Color) {
		if c.IsFree() || c.IsNone() || c.Kind == ir.KindShared {
			return
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range s.InstrColor {
		add(c)
	}
	// A function that receives a colored argument belongs to that color
	// even if inference has not placed an instruction there yet (paper
	// §7.3.1: "f's color set is {blue} because f receives a blue
	// argument").
	for _, c := range s.ArgColors {
		add(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ValueColor returns the color of a value within the spec (F for constants
// and unmapped registers).
func (s *FuncSpec) ValueColor(v ir.Value) ir.Color {
	if c, ok := s.RegColor[v]; ok {
		return c
	}
	return ir.F
}

// Analysis is the result of running the secure type system over a module.
type Analysis struct {
	Mod    *ir.Module
	Mode   Mode
	Specs  map[string]*FuncSpec
	Errors []*TypeError
	// Colors is the sorted set of named enclave colors in the program.
	Colors []ir.Color
	// Entries lists the specs generated for entry points, which the
	// partitioner turns into interface versions (§7.3.4).
	Entries []*FuncSpec
	// Indirect lists specs generated for functions whose address is
	// taken (specialized for untrusted arguments, §6.3).
	Indirect []*FuncSpec

	passes  int
	changed bool
	// cur tracks where the analysis currently is (spec, block index,
	// instruction index) so errorf can stamp every diagnostic with a
	// deterministic sort key and the spec needed for leak traces.
	curSpec  *FuncSpec
	curBlock int
	curInstr int
	// softU marks registers and instructions whose U color is only the
	// hardened-mode default for calls with no known enclave color yet;
	// a later stabilizing pass may upgrade them to an enclave color.
	softU map[any]bool
}

// Err returns all diagnostics joined, or nil.
func (a *Analysis) Err() error {
	if len(a.Errors) == 0 {
		return nil
	}
	errs := make([]error, len(a.Errors))
	for i, e := range a.Errors {
		errs[i] = e
	}
	return errors.Join(errs...)
}

// Passes reports how many stabilizing passes ran (paper §5.2).
func (a *Analysis) Passes() int { return a.passes }

// SpecKey builds the memoization key of a specialization.
func SpecKey(name string, colors []ir.Color) string {
	parts := make([]string, len(colors))
	for i, c := range colors {
		parts[i] = c.String()
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}

// unsafeLoc is the color given to an unannotated memory location:
// U in hardened mode, S in relaxed mode (Table 2).
func (a *Analysis) unsafeLoc() ir.Color {
	if a.Mode == Hardened {
		return ir.U
	}
	return ir.S
}

// resolveLoc resolves a declared location color: explicit colors stand,
// the absence of a color becomes unsafe memory.
func (a *Analysis) resolveLoc(c ir.Color) ir.Color {
	if c.IsNone() {
		return a.unsafeLoc()
	}
	return c
}

// entryArgColor is the color given to the parameters of an entry point:
// U in hardened mode and F in relaxed mode (§6.2).
func (a *Analysis) entryArgColor() ir.Color {
	if a.Mode == Hardened {
		return ir.U
	}
	return ir.F
}
