package typing

import (
	"strings"
	"testing"

	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/passes"
)

// analyzeSrc compiles MiniC source, runs the SSA pipeline, and analyzes it.
func analyzeSrc(t *testing.T, mode Mode, src string, entries ...string) *Analysis {
	t.Helper()
	mod, err := minic.Compile("test.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	passes.RunAll(mod)
	return Analyze(mod, Options{Mode: mode, Entries: entries})
}

func wantErrorContaining(t *testing.T, a *Analysis, frag string) {
	t.Helper()
	for _, e := range a.Errors {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Errorf("no error containing %q; got %d errors: %v", frag, len(a.Errors), a.Err())
}

func wantNoErrors(t *testing.T, a *Analysis) {
	t.Helper()
	if len(a.Errors) > 0 {
		t.Errorf("unexpected errors: %v", a.Err())
	}
}

// TestDirectLeak checks the first confidentiality rule: a colored value
// cannot be stored in a memory location with a different color (§4).
func TestDirectLeak(t *testing.T) {
	src := `
int color(blue) secret;
int public;
void leak() { public = secret; }
`
	a := analyzeSrc(t, Hardened, src)
	wantErrorContaining(t, a, "cannot be stored in U memory")
}

// TestExplicitIndirectLeak checks the third rule: the output of an
// instruction consuming a colored value has the same color (§4).
func TestExplicitIndirectLeak(t *testing.T) {
	src := `
int color(blue) secret;
int public;
void leak() { public = secret + 1; }
`
	a := analyzeSrc(t, Hardened, src)
	wantErrorContaining(t, a, "cannot be stored in U memory")
}

// TestFigure3b reproduces the hidden-pointer-modification example of
// Figure 3.b: coloring a and the pointee of x makes the racy retarget
// "x = &b" a compile-time error, while f's legitimate use type-checks.
func TestFigure3b(t *testing.T) {
	src := `
int color(blue) a;
int b;
int color(blue)* x;

void f(int color(blue) s) {
	x = &a;
	*x = s;
}
void g() {
	x = &b; // FAIL
}
`
	a := analyzeSrc(t, Relaxed, src)
	if len(a.Errors) == 0 {
		t.Fatal("expected a type error for x = &b")
	}
	wantErrorContaining(t, a, "pointer to S memory used where pointer to blue memory is expected")
	for _, e := range a.Errors {
		if e.Fn == "f" {
			t.Errorf("unexpected error in f (the legitimate writer): %v", e)
		}
	}
}

// TestFigure3bFixed checks that coloring b as the developer should removes
// the error.
func TestFigure3bFixed(t *testing.T) {
	src := `
int color(blue) a;
int color(blue) b;
int color(blue)* x;

void f(int color(blue) s) { x = &a; *x = s; }
void g() { x = &b; }
`
	a := analyzeSrc(t, Relaxed, src)
	wantNoErrors(t, a)
}

// TestFigure4ImplicitLeak reproduces Figure 4: a store to an unsafe
// location inside a basic block controlled by a colored condition is an
// implicit indirect leak; the joining point is no longer colored.
func TestFigure4ImplicitLeak(t *testing.T) {
	src := `
int x;
int y;
int color(blue) b;
void f() {
	if (b == 42)
		x = 1;
	y = 2;
}
`
	a := analyzeSrc(t, Relaxed, src)
	wantErrorContaining(t, a, "implicit leak")
	// Only the x = 1 store (line 7) may be flagged, not y = 2 (line 8).
	for _, e := range a.Errors {
		if e.Pos.Line == 8 {
			t.Errorf("joining point wrongly colored: %v", e)
		}
	}
}

// TestFigure4JoinIsFree checks the converse: storing to blue inside the
// branch is fine, and the join block stays free.
func TestFigure4Legal(t *testing.T) {
	src := `
int color(blue) x;
int y;
int color(blue) b;
void f() {
	if (b == 42)
		x = 1;
	y = 2;
}
`
	a := analyzeSrc(t, Relaxed, src)
	wantNoErrors(t, a)
}

// TestIagoMixedColors checks the Iago rule: an instruction cannot take
// inputs with two different colors (§1, §4).
func TestIagoMixedColors(t *testing.T) {
	src := `
int color(blue) key;
entry int check(int guess) {
	return guess == key;
}
`
	a := analyzeSrc(t, Hardened, src)
	if len(a.Errors) == 0 {
		t.Fatal("expected an Iago error: U entry argument mixed with blue value")
	}
	found := false
	for _, e := range a.Errors {
		if e.Kind == ErrIago || e.Kind == ErrIncompatible {
			found = true
		}
	}
	if !found {
		t.Errorf("errors are not Iago/incompatible: %v", a.Err())
	}
}

// TestRelaxedAllowsUntrustedInputs checks that the same program is
// accepted in relaxed mode, where entry arguments are F (§6.2) — the mode
// trades Iago protection away (§6.1.2).
func TestRelaxedAllowsUntrustedInputs(t *testing.T) {
	src := `
int color(blue) key;
int color(blue) result;
entry void check(int guess) {
	result = guess == key;
}
`
	a := analyzeSrc(t, Relaxed, src)
	wantNoErrors(t, a)
}

// TestFigure6ColorSets reproduces the color-set computation of §7.3.1 on
// the complete example of Figure 6.
func TestFigure6ColorSets(t *testing.T) {
	src := `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`
	a := analyzeSrc(t, Relaxed, src, "main")
	wantNoErrors(t, a)

	want := map[string][]string{
		SpecKey("main", nil):                       {"U", "blue"},
		SpecKey("f", []ir.Color{ir.Named("blue")}): {"blue"},
		SpecKey("g", []ir.Color{ir.F}):             {"U", "blue", "red"},
	}
	for key, colors := range want {
		s := a.Specs[key]
		if s == nil {
			t.Errorf("spec %s missing; have %v", key, sortedKeys(a.Specs))
			continue
		}
		got := s.ColorSet()
		if len(got) != len(colors) {
			t.Errorf("%s color set = %v, want %v", key, got, colors)
			continue
		}
		for i := range colors {
			if got[i].String() != colors[i] {
				t.Errorf("%s color set = %v, want %v", key, got, colors)
				break
			}
		}
	}
}

// TestSpecialization checks that one function called with two different
// argument colors produces two specialized instances (§6.2).
func TestSpecialization(t *testing.T) {
	src := `
int color(blue) b;
int color(red) r;
int id(int v) { return v; }
entry void main() {
	b = id(b);
	r = id(r);
}
`
	a := analyzeSrc(t, Relaxed, src, "main")
	wantNoErrors(t, a)
	blueSpec := a.Specs[SpecKey("id", []ir.Color{ir.Named("blue")})]
	redSpec := a.Specs[SpecKey("id", []ir.Color{ir.Named("red")})]
	if blueSpec == nil || redSpec == nil {
		t.Fatalf("missing specializations; have %v", sortedKeys(a.Specs))
	}
	if blueSpec.RetColor != ir.Named("blue") {
		t.Errorf("id(blue) returns %v, want blue", blueSpec.RetColor)
	}
	if redSpec.RetColor != ir.Named("red") {
		t.Errorf("id(red) returns %v, want red", redSpec.RetColor)
	}
}

// TestFigure1WithinCall checks §6.3: the strncpy into a blue field executes
// in the blue enclave, because the pointee of its destination is blue.
func TestFigure1WithinCall(t *testing.T) {
	src := `
struct account {
	char color(blue) name[256];
	double color(red) balance;
};
struct account* create(char* name) {
	struct account* res = malloc(sizeof(struct account));
	strncpy(res->name, name, 256);
	res->balance = 0.0;
	return res;
}
`
	a := analyzeSrc(t, Relaxed, src, "create")
	wantNoErrors(t, a)
	spec := a.Entries[0]
	var strncpyColor, storeColor ir.Color
	spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if call, ok := in.(*ir.Call); ok {
			if fn, ok := call.Callee.(*ir.Function); ok && fn.FName == "strncpy" {
				strncpyColor = spec.InstrColor[in]
			}
		}
		if st, ok := in.(*ir.Store); ok {
			if _, isF := st.Ptr.(*ir.FieldAddr); isF {
				if pt, ok := st.Ptr.Type().(ir.PointerType); ok && pt.Color == ir.Named("red") {
					storeColor = spec.InstrColor[in]
				}
			}
		}
	})
	if strncpyColor != ir.Named("blue") {
		t.Errorf("strncpy placed in %v, want blue", strncpyColor)
	}
	if storeColor != ir.Named("red") {
		t.Errorf("balance store placed in %v, want red", storeColor)
	}
	// The multi-color struct is allocated in unsafe memory (§7.2), so
	// create's color set also contains U besides blue and red.
	cs := spec.ColorSet()
	if len(cs) != 3 {
		t.Errorf("create color set = %v, want {U blue red}", cs)
	}
}

// TestMultiColorStructHardened checks the §8 limitation: multi-color
// structures require relaxed mode.
func TestMultiColorStructHardened(t *testing.T) {
	src := `
struct account {
	char color(blue) name[256];
	double color(red) balance;
};
struct account g;
`
	a := analyzeSrc(t, Hardened, src)
	wantErrorContaining(t, a, "multi-color structures require relaxed mode")
}

// TestWithinDeclassifyNeedsIgnore checks §6.4: passing unsafe data to a
// within function executing in an enclave demands the ignore annotation.
func TestWithinDeclassifyNeedsIgnore(t *testing.T) {
	src := `
char color(blue) secret[64];
entry void expose(char* out) {
	memcpy(out, secret, 64);
}
`
	a := analyzeSrc(t, Hardened, src, "expose")
	wantErrorContaining(t, a, "ignore")
}

// TestIgnoreDeclassifies checks that the same flow is accepted through an
// ignore-annotated communication function (the encrypt example of §6.4).
func TestIgnoreDeclassifies(t *testing.T) {
	src := `
ignore void encrypt(char color(blue)* plain, long len, char* cipher);
char color(blue) secret[64];
entry void expose(char* out) {
	encrypt(secret, 64, out);
}
`
	a := analyzeSrc(t, Hardened, src, "expose")
	wantNoErrors(t, a)
	spec := a.Entries[0]
	var callColor ir.Color
	spec.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if call, ok := in.(*ir.Call); ok {
			if fn, ok := call.Callee.(*ir.Function); ok && fn.FName == "encrypt" {
				callColor = spec.InstrColor[in]
			}
		}
	})
	if callColor != ir.Named("blue") {
		t.Errorf("encrypt placed in %v, want blue (the call executes in the enclave)", callColor)
	}
}

// TestExternalCallLeak checks §6.3: arguments of calls into the untrusted
// part must be compatible with U.
func TestExternalCallLeak(t *testing.T) {
	src := `
extern void send(long v);
long color(blue) secret;
entry void leak() {
	send(secret);
}
`
	a := analyzeSrc(t, Hardened, src, "leak")
	wantErrorContaining(t, a, "external call")
}

// TestIndirectCallIsUntrusted checks §6.3: indirect calls are treated as
// calls into the untrusted part.
func TestIndirectCallIsUntrusted(t *testing.T) {
	src := `
long color(blue) secret;
entry void run(long (*f)(long)) {
	f(secret);
}
`
	a := analyzeSrc(t, Hardened, src, "run")
	wantErrorContaining(t, a, "external call")
}

// TestAddressTakenFunctionSpecializedForU checks §6.3: loading a function
// pointer yields a version specialized for untrusted arguments.
func TestAddressTakenFunctionSpecializedForU(t *testing.T) {
	// The function pointer must escape (here into a global); a local
	// one is promoted by mem2reg and the call devirtualized.
	src := `
long helper(long v) { return v + 1; }
long (*gf)(long);
entry void main() {
	gf = helper;
	gf(3);
}
`
	a := analyzeSrc(t, Hardened, src, "main")
	if len(a.Indirect) != 1 {
		t.Fatalf("indirect specs = %d, want 1", len(a.Indirect))
	}
	if got := a.Indirect[0].ArgColors[0]; got != ir.U {
		t.Errorf("indirect spec arg color = %v, want U", got)
	}
}

// TestStabilizingTerminates checks §5.2 on a recursive function: the
// stabilizing algorithm reaches a fixpoint.
func TestStabilizingTerminates(t *testing.T) {
	src := `
int color(blue) acc;
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
entry void main() {
	acc = fact(acc);
}
`
	a := analyzeSrc(t, Relaxed, src, "main")
	wantNoErrors(t, a)
	if a.Passes() >= 64 {
		t.Errorf("stabilizing algorithm did not converge (%d passes)", a.Passes())
	}
}

// TestLoadFromSharedIsFree checks Table 2: in relaxed mode a value loaded
// from S becomes F and may flow into an enclave.
func TestLoadFromSharedIsFree(t *testing.T) {
	src := `
int shared_counter;
int color(blue) secret;
entry void absorb() {
	secret = shared_counter;
}
`
	a := analyzeSrc(t, Relaxed, src, "absorb")
	wantNoErrors(t, a)
}

// TestLoadFromUntrustedIsNot is the hardened-mode counterpart: a value
// loaded from U stays U and cannot flow into an enclave (Iago protection).
func TestLoadFromUntrustedIsNot(t *testing.T) {
	src := `
int shared_counter;
int color(blue) secret;
entry void absorb() {
	secret = shared_counter;
}
`
	a := analyzeSrc(t, Hardened, src, "absorb")
	wantErrorContaining(t, a, "cannot be stored in blue memory")
}

// TestCastCannotChangeColor checks the fourth rule of §4.
func TestCastCannotChangeColor(t *testing.T) {
	src := `
int color(blue) b;
entry void f() {
	int* p = (int*)&b;
	*p = 0;
}
`
	a := analyzeSrc(t, Hardened, src, "f")
	wantErrorContaining(t, a, "pointer to blue memory used where pointer to U memory is expected")
}

// TestTwoColorHashmapRelaxed is the Privagic-2 configuration shape (§9.3):
// keys and values with two different colors, accepted in relaxed mode. As
// in the paper's port (§9.3.1: "2 lines to declassify the result of a
// get"), the red key-comparison result must be declassified through an
// ignore function before it may gate blue code.
func TestTwoColorHashmapRelaxed(t *testing.T) {
	src := `
ignore long reveal(long color(red) v);
struct pair {
	long color(red) key;
	long color(blue) value;
};
struct pair table[128];
long color(blue) found;
entry void put(long k, long v) {
	table[k % 128].key = k;
	table[k % 128].value = v;
}
entry void get(long k) {
	long hit = reveal(table[k % 128].key == k);
	if (hit)
		found = table[k % 128].value;
}
`
	a := analyzeSrc(t, Relaxed, src, "put", "get")
	wantNoErrors(t, a)
	if len(a.Colors) != 2 {
		t.Errorf("colors = %v, want [blue red]", a.Colors)
	}
}

// TestTwoColorGateNeedsDeclassify is the negative counterpart: without the
// declassification, gating blue code on a red comparison is an implicit
// leak between enclaves (Rule 4).
func TestTwoColorGateNeedsDeclassify(t *testing.T) {
	src := `
struct pair {
	long color(red) key;
	long color(blue) value;
};
struct pair table[128];
long color(blue) found;
entry void get(long k) {
	if (table[k % 128].key == k)
		found = table[k % 128].value;
}
`
	a := analyzeSrc(t, Relaxed, src, "get")
	wantErrorContaining(t, a, "red condition")
}
