// Package ycsb reimplements the YCSB workload generator of Cooper et al.
// [15] that the paper injects load with (§9.2, §9.3): zipfian, uniform and
// latest request distributions, the standard workload mixes A–F, and the
// paper's record sizing (1024-byte values, 8-byte keys for the data
// structures).
package ycsb

import (
	"fmt"
	"math"
)

// OpKind is one YCSB operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	}
	return "?"
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen is set for scans.
	ScanLen int
}

// Mix is an operation mix; fractions must sum to 1.
type Mix struct {
	Read, Update, Insert, Scan, RMW float64
}

// The standard YCSB workload mixes.
var (
	// WorkloadA is update-heavy: 50/50 reads and updates.
	WorkloadA = Mix{Read: 0.5, Update: 0.5}
	// WorkloadB is read-mostly: 95/5.
	WorkloadB = Mix{Read: 0.95, Update: 0.05}
	// WorkloadC is read-only.
	WorkloadC = Mix{Read: 1.0}
	// WorkloadD is read-latest: 95% reads, 5% inserts.
	WorkloadD = Mix{Read: 0.95, Insert: 0.05}
	// WorkloadE is short scans: 95% scans, 5% inserts.
	WorkloadE = Mix{Scan: 0.95, Insert: 0.05}
	// WorkloadF is read-modify-write: 50% reads, 50% RMW.
	WorkloadF = Mix{Read: 0.5, RMW: 0.5}
)

// Distribution selects how keys are drawn.
type Distribution int

// Distributions.
const (
	Uniform Distribution = iota + 1
	Zipfian
	Latest
)

// Config parameterizes a generator.
type Config struct {
	Records      int
	Mix          Mix
	Distribution Distribution
	// ZipfTheta is the zipfian skew (YCSB default 0.99).
	ZipfTheta float64
	// RecordSize is carried for harnesses (1024 B in §9.2).
	RecordSize int
	Seed       uint64
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg     Config
	rng     splitMix64
	zipf    *zipfGen
	records uint64

	// Substream state (Split): child i of n draws inserts from the
	// disjoint arithmetic block {insertNext, insertNext+insertStride, …}
	// above the preloaded key range, so concurrent clients never collide
	// on a freshly inserted key. insertStride == 0 marks an unsplit
	// generator, which keeps the original grow-the-keyspace behavior.
	insertNext   uint64
	insertStride uint64
}

// Split derives n deterministic substreams for concurrent clients. Each
// child's RNG is seeded from (Config.Seed, child index) only — the same
// configuration always yields the same n streams, regardless of how many
// operations the parent has already drawn — and the children's insert
// keys partition the space above Records (child i takes Records+i,
// Records+i+n, …), so the streams are disjoint where they must be and
// reproducible everywhere. Reads/updates keep drawing from the shared
// preloaded range [0, Records): substreams model independent clients of
// one keyspace, not separate keyspaces.
func (g *Generator) Split(n int) []*Generator {
	if n <= 0 {
		return nil
	}
	out := make([]*Generator, n)
	for i := 0; i < n; i++ {
		child := &Generator{
			cfg:          g.cfg,
			records:      uint64(g.cfg.Records),
			zipf:         g.zipf, // stateless between draws; shareable
			insertNext:   uint64(g.cfg.Records) + uint64(i),
			insertStride: uint64(n),
		}
		// Decorrelate the child seed from both the parent seed and the
		// sibling index with one splitmix round each.
		s := splitMix64{state: g.cfg.Seed ^ 0x9e3779b97f4a7c15}
		child.rng = splitMix64{state: s.next() ^ fnvMix(uint64(i)+1)}
		out[i] = child
	}
	return out
}

// New builds a generator; it validates the mix.
func New(cfg Config) (*Generator, error) {
	sum := cfg.Mix.Read + cfg.Mix.Update + cfg.Mix.Insert + cfg.Mix.Scan + cfg.Mix.RMW
	if math.Abs(sum-1.0) > 1e-9 {
		return nil, fmt.Errorf("ycsb: operation mix sums to %g, want 1", sum)
	}
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: need a positive record count")
	}
	if cfg.ZipfTheta == 0 {
		cfg.ZipfTheta = 0.99
	}
	g := &Generator{cfg: cfg, rng: splitMix64{state: cfg.Seed ^ 0x9e3779b97f4a7c15}, records: uint64(cfg.Records)}
	if cfg.Distribution == Zipfian {
		g.zipf = newZipf(uint64(cfg.Records), cfg.ZipfTheta)
	}
	return g, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	r := g.rng.float64()
	m := g.cfg.Mix
	var kind OpKind
	switch {
	case r < m.Read:
		kind = OpRead
	case r < m.Read+m.Update:
		kind = OpUpdate
	case r < m.Read+m.Update+m.Insert:
		kind = OpInsert
	case r < m.Read+m.Update+m.Insert+m.Scan:
		kind = OpScan
	default:
		kind = OpReadModifyWrite
	}
	op := Op{Kind: kind, Key: g.nextKey()}
	if kind == OpInsert {
		if g.insertStride > 0 {
			// Substream: take the next key of this child's disjoint
			// block; the read range stays the preloaded keyspace.
			op.Key = g.insertNext
			g.insertNext += g.insertStride
		} else {
			g.records++
			op.Key = g.records - 1
		}
	}
	if kind == OpScan {
		op.ScanLen = 1 + int(g.rng.next()%100)
	}
	return op
}

// nextKey draws a key per the configured distribution, hashed so that
// popular zipfian ranks spread over the keyspace (as YCSB does).
func (g *Generator) nextKey() uint64 {
	switch g.cfg.Distribution {
	case Zipfian:
		rank := g.zipf.next(&g.rng)
		return fnvMix(rank) % g.records
	case Latest:
		rank := g.zipf2().next(&g.rng)
		return g.records - 1 - rank%g.records
	default:
		return g.rng.next() % g.records
	}
}

func (g *Generator) zipf2() *zipfGen {
	if g.zipf == nil {
		g.zipf = newZipf(g.records, g.cfg.ZipfTheta)
	}
	return g.zipf
}

// KeyBytes renders a key as the fixed 8-byte key the paper's data-structure
// experiments use (§9.3: "keys of 8 bytes").
func KeyBytes(k uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(k >> (8 * i))
	}
	return b
}

// splitMix64 is a tiny deterministic PRNG.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

func fnvMix(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

// zipfGen draws zipfian ranks in [0, n) using the Gray et al. rejection
// method YCSB uses.
type zipfGen struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func newZipf(n uint64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Closed-loop sum; capped for very large n with the standard
	// integral approximation to keep setup O(1M).
	if n > 1_000_000 {
		base := zeta(1_000_000, theta)
		// ∫ x^-theta dx from 1e6 to n.
		return base + (math.Pow(float64(n), 1-theta)-math.Pow(1e6, 1-theta))/(1-theta)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next(rng *splitMix64) uint64 {
	u := rng.float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
