package ycsb

import (
	"math"
	"testing"
)

func gen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMixProportions(t *testing.T) {
	g := gen(t, Config{Records: 1000, Mix: WorkloadB, Distribution: Uniform, Seed: 1})
	const n = 100_000
	reads := 0
	for i := 0; i < n; i++ {
		if g.Next().Kind == OpRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.95) > 0.01 {
		t.Errorf("workload B read fraction = %.3f, want ~0.95", frac)
	}
}

func TestInvalidMix(t *testing.T) {
	if _, err := New(Config{Records: 10, Mix: Mix{Read: 0.5}}); err == nil {
		t.Error("mix summing to 0.5 accepted")
	}
	if _, err := New(Config{Records: 0, Mix: WorkloadC}); err == nil {
		t.Error("zero records accepted")
	}
}

func TestKeysInRange(t *testing.T) {
	for _, d := range []Distribution{Uniform, Zipfian, Latest} {
		g := gen(t, Config{Records: 5000, Mix: WorkloadC, Distribution: d, Seed: 7})
		for i := 0; i < 50_000; i++ {
			op := g.Next()
			if op.Key >= 5000 {
				t.Fatalf("distribution %d produced key %d out of range", d, op.Key)
			}
		}
	}
}

// TestZipfianIsSkewed checks the defining property the paper's hashmap
// analysis relies on (§9.3.2: "the zipfian access pattern leads to fewer
// LLC misses"): a small fraction of keys receives most accesses.
func TestZipfianIsSkewed(t *testing.T) {
	const records = 10_000
	g := gen(t, Config{Records: records, Mix: WorkloadC, Distribution: Zipfian, Seed: 3})
	counts := make([]int, records)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Count accesses landing on the 1% hottest keys.
	hot := 0
	for _, c := range counts {
		if c > n/records*10 {
			hot += c
		}
	}
	if frac := float64(hot) / n; frac < 0.3 {
		t.Errorf("hottest keys draw %.2f of accesses, want > 0.3 (skew)", frac)
	}

	// Uniform, by contrast, must not concentrate.
	gu := gen(t, Config{Records: records, Mix: WorkloadC, Distribution: Uniform, Seed: 3})
	ucounts := make([]int, records)
	for i := 0; i < n; i++ {
		ucounts[gu.Next().Key]++
	}
	uhot := 0
	for _, c := range ucounts {
		if c > n/records*10 {
			uhot += c
		}
	}
	if frac := float64(uhot) / n; frac > 0.05 {
		t.Errorf("uniform concentrates %.2f of accesses on hot keys", frac)
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, Config{Records: 100, Mix: WorkloadA, Distribution: Zipfian, Seed: 9})
	b := gen(t, Config{Records: 100, Mix: WorkloadA, Distribution: Zipfian, Seed: 9})
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestInsertGrowsKeyspace(t *testing.T) {
	g := gen(t, Config{Records: 10, Mix: WorkloadD, Distribution: Uniform, Seed: 5})
	maxKey := uint64(0)
	inserts := 0
	for i := 0; i < 10_000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			inserts++
			if op.Key > maxKey {
				maxKey = op.Key
			}
		}
	}
	if inserts == 0 {
		t.Fatal("workload D produced no inserts")
	}
	if maxKey < 10 {
		t.Errorf("inserts never extended the keyspace (max %d)", maxKey)
	}
}

func TestScanLengths(t *testing.T) {
	g := gen(t, Config{Records: 100, Mix: WorkloadE, Distribution: Uniform, Seed: 2})
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
			t.Fatalf("scan length %d out of [1,100]", op.ScanLen)
		}
	}
}

func TestKeyBytes(t *testing.T) {
	b := KeyBytes(0x0102030405060708)
	if len(b) != 8 || b[0] != 8 || b[7] != 1 {
		t.Errorf("KeyBytes wrong: %v", b)
	}
}

// drain collects n ops from a generator.
func drain(g *Generator, n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TestSplitDeterminism: splitting the same configuration twice yields
// byte-identical substreams, even when one parent has already been
// consumed — the children depend only on (seed, index).
func TestSplitDeterminism(t *testing.T) {
	cfg := Config{Records: 500, Mix: WorkloadA, Distribution: Zipfian, Seed: 11}
	a := gen(t, cfg).Split(4)
	parent := gen(t, cfg)
	drain(parent, 333) // advance the parent; must not perturb the split
	b := parent.Split(4)
	for i := range a {
		sa, sb := drain(a[i], 2000), drain(b[i], 2000)
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("substream %d diverged at op %d: %+v vs %+v", i, j, sa[j], sb[j])
			}
		}
	}
}

// TestSplitStreamsDiffer: siblings draw distinct streams (they model
// independent clients), and each differs from an unsplit generator.
func TestSplitStreamsDiffer(t *testing.T) {
	cfg := Config{Records: 500, Mix: WorkloadA, Distribution: Uniform, Seed: 11}
	subs := gen(t, cfg).Split(3)
	solo := drain(gen(t, cfg), 200)
	streams := make([][]Op, len(subs))
	for i, s := range subs {
		streams[i] = drain(s, 200)
	}
	same := func(x, y []Op) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for i := range streams {
		if same(streams[i], solo) {
			t.Errorf("substream %d equals the unsplit stream", i)
		}
		for j := i + 1; j < len(streams); j++ {
			if same(streams[i], streams[j]) {
				t.Errorf("substreams %d and %d are identical", i, j)
			}
		}
	}
}

// TestSplitInsertKeysDisjoint: concurrent clients must never collide on
// a freshly inserted key — child i owns the arithmetic block
// records+i, records+i+n, … — while reads stay inside the preloaded
// range.
func TestSplitInsertKeysDisjoint(t *testing.T) {
	const records, n = 100, 4
	subs := gen(t, Config{Records: records, Mix: WorkloadD, Distribution: Uniform, Seed: 23}).Split(n)
	owner := map[uint64]int{}
	for i, s := range subs {
		for _, op := range drain(s, 5000) {
			if op.Kind == OpInsert {
				if op.Key < records {
					t.Fatalf("substream %d inserted into the preloaded range: key %d", i, op.Key)
				}
				if int((op.Key-records)%n) != i {
					t.Fatalf("substream %d inserted key %d outside its block", i, op.Key)
				}
				if prev, dup := owner[op.Key]; dup {
					t.Fatalf("key %d inserted by both %d and %d", op.Key, prev, i)
				}
				owner[op.Key] = i
			} else if op.Key >= records {
				t.Fatalf("substream %d read key %d outside the preloaded range", i, op.Key)
			}
		}
	}
	if len(owner) == 0 {
		t.Fatal("no inserts drawn")
	}
}

// TestSplitCoverage: the union of substream reads still covers the
// keyspace (no child is boxed into a corner of it).
func TestSplitCoverage(t *testing.T) {
	const records = 200
	subs := gen(t, Config{Records: records, Mix: WorkloadC, Distribution: Uniform, Seed: 31}).Split(4)
	seen := map[uint64]bool{}
	for _, s := range subs {
		for _, op := range drain(s, 2000) {
			seen[op.Key] = true
		}
	}
	if len(seen) < records*9/10 {
		t.Errorf("substreams covered only %d/%d keys", len(seen), records)
	}
}
