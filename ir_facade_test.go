package privagic

import (
	"testing"
)

// TestCompileIRPath exercises the Figure 5 input path: MiniC → emitted IR
// text → CompileIR → execution, with the same behaviour as the direct
// compile.
func TestCompileIRPath(t *testing.T) {
	src := `
long color(blue) total = 0;
entry void add(long color(blue) n) { total = total + n; }
entry long get() { return total; }
`
	direct, err := Compile("acc.c", src, Options{Mode: Hardened})
	if err != nil {
		t.Fatal(err)
	}
	text := direct.EmitIR()
	viaIR, err := CompileIR("acc.pir", text, Options{Mode: Hardened})
	if err != nil {
		t.Fatalf("CompileIR: %v\n--- emitted ---\n%s", err, text)
	}

	run := func(p *Program) int64 {
		inst := p.Instantiate(MachineA())
		defer inst.Close()
		for _, n := range []int64{5, 7, 30} {
			if _, err := inst.Call("add", n); err != nil {
				t.Fatal(err)
			}
		}
		v, err := inst.Call("get")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(direct), run(viaIR); a != b || a != 42 {
		t.Errorf("direct = %d, via IR = %d, want 42", a, b)
	}
}

// TestCompileIRRejectsLeaks: type errors surface on the IR path too.
func TestCompileIRRejectsLeaks(t *testing.T) {
	src := `
@secret = global i64 color(blue)
@open = global i64
define void @leak() {
entry1:
  %v = load i64, @secret
  store %v, @open
  ret void
}
`
	if _, err := CompileIR("leak.pir", src, Options{Mode: Hardened}); err == nil {
		t.Fatal("hand-written leaking IR accepted")
	}
}
