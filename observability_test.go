package privagic

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestObservabilityFacade exercises the public observability surface end
// to end: arm metrics + tracer, run a partitioned program, and check that
// the snapshot carries catalogued runtime metrics, the trace exports as
// parseable Chrome JSON, the flight-record dump renders, and the exact
// per-kind totals reconcile.
func TestObservabilityFacade(t *testing.T) {
	src := `
int color(blue) blue = 10;
int f(int y) { return y + blue; }
entry int main() { return f(32); }
`
	prog, err := Compile("obs.c", src, Options{Mode: Relaxed, Entries: []string{"main"}})
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableObservability(ObservabilityOptions{Metrics: true, Trace: true})
	ret, err := inst.Call("main")
	if err != nil || ret != 42 {
		t.Fatalf("Call = %d, %v; want 42", ret, err)
	}

	snap := inst.MetricsSnapshot()
	if snap == nil {
		t.Fatal("MetricsSnapshot is nil with metrics enabled")
	}
	for _, name := range []string{"prt.chunk_exec_us.count", "prt.queue.enqueues", "obs.trace_events"} {
		if snap[name] <= 0 {
			t.Errorf("snapshot[%q] = %d, want > 0 (snapshot: %v)", name, snap[name], snap)
		}
	}

	counts := inst.TraceCounts()
	if counts["spawn"] == 0 || counts["spawn"] != counts["spawn.end"] {
		t.Fatalf("TraceCounts spans unbalanced: %v", counts)
	}
	if snap["obs.trace_events"] != totalOf(counts) {
		t.Errorf("obs.trace_events = %d, but per-kind totals sum to %d",
			snap["obs.trace_events"], totalOf(counts))
	}

	var buf bytes.Buffer
	if err := inst.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export is empty")
	}

	dump := inst.TraceDump(8)
	if dump == "" || !strings.Contains(dump, "spawn") {
		t.Fatalf("TraceDump does not show the schedule:\n%s", dump)
	}
}

func totalOf(counts map[string]int64) int64 {
	var n int64
	for _, v := range counts {
		n += v
	}
	return n
}

// TestObservabilityDisabledIsInert pins the fast path: with nothing
// enabled every accessor degrades to its zero value instead of panicking.
func TestObservabilityDisabledIsInert(t *testing.T) {
	src := `entry int main() { return 1; }`
	prog, err := Compile("plain.c", src, Options{Mode: Relaxed, Entries: []string{"main"}})
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	if _, err := inst.Call("main"); err != nil {
		t.Fatal(err)
	}
	if snap := inst.MetricsSnapshot(); snap != nil {
		t.Errorf("MetricsSnapshot = %v with observability off", snap)
	}
	if counts := inst.TraceCounts(); counts != nil {
		t.Errorf("TraceCounts = %v with observability off", counts)
	}
	if dump := inst.TraceDump(8); dump != "" {
		t.Errorf("TraceDump = %q with observability off", dump)
	}
	if err := inst.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace must error with no tracer armed")
	}
}
