// Package privagic is a reproduction of "Privagic: automatic code
// partitioning with explicit secure typing" (Tanigassalame et al.,
// MIDDLEWARE 2024): a compiler and runtime that automatically partitions a
// multi-threaded C-like application between Intel SGX enclaves and unsafe
// memory, driven by explicit secure types (colors) instead of data-flow
// analysis.
//
// The public API mirrors the paper's toolchain (Figure 5):
//
//	prog, err := privagic.Compile("app.c", source, privagic.Options{
//		Mode: privagic.Hardened,
//	})
//	inst := prog.Instantiate(nil) // simulated SGX machine
//	defer inst.Close()
//	ret, err := inst.Call("main")
//
// Source programs are written in MiniC — a C subset with the paper's
// annotations: color(NAME) type qualifiers (Figure 1), and the entry,
// within, and ignore function attributes (§6.2–§6.4).
package privagic

import (
	"fmt"
	"io"
	"time"

	"privagic/internal/audit"
	"privagic/internal/faults"
	"privagic/internal/interp"
	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/obs"
	"privagic/internal/partition"
	"privagic/internal/passes"
	"privagic/internal/passes/crossing"
	"privagic/internal/prt"
	"privagic/internal/sgx"
	"privagic/internal/typing"
)

// Mode selects the compiler mode of paper §5.
type Mode = typing.Mode

// Compiler modes: Hardened enforces confidentiality, integrity and Iago
// protection; Relaxed drops Iago protection and allows Free values to cross
// enclaves in cont messages (required for multi-color structures, §8).
const (
	Hardened = typing.Hardened
	Relaxed  = typing.Relaxed
)

// Audit levels for Options.Audit, re-exported from internal/audit.
const (
	AuditOff    = audit.Off
	AuditWarn   = audit.Warn
	AuditStrict = audit.Strict
)

// Engine selects the chunk execution tier (Options.Engine).
type Engine string

// Execution engines: the reference interpreter (the default), the
// closure-compiled tier (every SSA instruction fused into a pre-resolved
// step closure; same seams, ~an order of magnitude faster on
// compute-bound chunks), and the differential oracle (runs both engines
// lockstep per chunk and turns any disagreement in results, effects,
// message plans, or typed errors into an ErrDivergence — the harness the
// compiled tier is validated under).
const (
	EngineInterp       Engine = "interp"
	EngineCompiled     Engine = "compiled"
	EngineDifferential Engine = "differential"
)

// prtEngine maps the public engine name to the runtime's selector.
func (e Engine) prtEngine() (prt.Engine, error) {
	switch e {
	case "", EngineInterp:
		return prt.EngineInterp, nil
	case EngineCompiled:
		return prt.EngineCompiled, nil
	case EngineDifferential:
		return prt.EngineDifferential, nil
	}
	return prt.EngineInterp, fmt.Errorf("privagic: unknown engine %q (want %q, %q, or %q)",
		string(e), EngineInterp, EngineCompiled, EngineDifferential)
}

// Options configures compilation.
type Options struct {
	// Mode is the compiler mode (default Hardened).
	Mode Mode
	// Entries names the entry points (paper §6.2). Empty means: use
	// functions marked with the entry attribute, or every defined
	// function if none is marked.
	Entries []string
	// Audit selects the static leak auditor that re-verifies the
	// partitioner's output (translation validation): AuditStrict turns
	// any violation into a compile error, AuditWarn records the result
	// in Program.Audit without failing, and the zero value (AuditOff)
	// skips the pass.
	Audit audit.Level
	// Engine selects the chunk execution tier for instances of the
	// program: EngineInterp (default), EngineCompiled, or
	// EngineDifferential. Unknown names are a compile error.
	Engine Engine
	// OptimizeCrossings runs the crossing-cost-guided partition
	// optimizer after partitioning: message-free unsafe chunks fuse into
	// their spawners, adjacent same-consumer conts coalesce into
	// vectored messages, and adjacent barrier intervals merge. The
	// optimized plan is always re-validated by the strict auditor —
	// legality bugs in the optimizer become compile errors, never silent
	// miscompiles — independent of the Audit level requested.
	OptimizeCrossings bool
}

// Program is a compiled, type-checked and partitioned application.
type Program struct {
	Module      *ir.Module
	Analysis    *typing.Analysis
	Partitioned *partition.Program
	// Audit is the static leak auditor's result (nil when Options.Audit
	// was AuditOff): the re-proved boundary invariants and the
	// whole-program boundary crossing report.
	Audit *audit.Result
	// CrossingOpt records what the crossing optimizer did (nil when
	// Options.OptimizeCrossings was off).
	CrossingOpt *crossing.OptResult
	// Engine is the validated execution tier instances will run on.
	Engine Engine
}

// Compile parses MiniC source, lowers it to SSA, runs the secure type
// system, and partitions the application. Type errors and hardened-mode
// partitioning errors are returned; the returned Program is nil on error.
func Compile(filename, src string, opts Options) (*Program, error) {
	mod, err := minic.Compile(filename, src)
	if err != nil {
		return nil, fmt.Errorf("privagic: frontend: %w", err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: opts.Mode, Entries: opts.Entries})
	if err := an.Err(); err != nil {
		return nil, fmt.Errorf("privagic: secure typing: %w", err)
	}
	return finishProgram(mod, an, opts)
}

// finishProgram runs the backend common to Compile and CompileIR:
// partitioning, the optional crossing optimizer (always followed by a
// strict re-validation of the rewritten plan), and the requested audit
// level.
func finishProgram(mod *ir.Module, an *typing.Analysis, opts Options) (*Program, error) {
	if _, err := opts.Engine.prtEngine(); err != nil {
		return nil, err
	}
	prog, err := partition.Partition(an)
	if err != nil {
		return nil, fmt.Errorf("privagic: partitioning: %w", err)
	}
	p := &Program{Module: mod, Analysis: an, Partitioned: prog, Engine: opts.Engine}
	if opts.OptimizeCrossings {
		p.CrossingOpt = crossing.Optimize(prog)
		// Translation validation of the rewrite: the optimizer's
		// legality proofs are never trusted on their own.
		res := audit.Run(prog)
		if err := res.Err(); err != nil {
			return nil, fmt.Errorf("privagic: crossing optimizer produced an invalid plan: %w", err)
		}
		if opts.Audit != audit.Off {
			p.Audit = res
		}
		return p, nil
	}
	if err := p.runAudit(opts.Audit); err != nil {
		return nil, err
	}
	return p, nil
}

// runAudit runs the static leak auditor per the configured level.
func (p *Program) runAudit(level audit.Level) error {
	if level == audit.Off {
		return nil
	}
	p.Audit = audit.Run(p.Partitioned)
	if level == audit.Strict {
		if err := p.Audit.Err(); err != nil {
			return fmt.Errorf("privagic: %w", err)
		}
	}
	return nil
}

// CrossingReports runs the static crossing-cost analysis: per entry
// point, every spawn/cont/barrier/split edge weighted by loop depth and
// estimated trip count, priced against the machine's cost model (nil
// means machine B). Compare against measured traffic via
// crossing.MeasuredEdges over TraceEvents.
func (p *Program) CrossingReports(m *sgx.Machine) map[string]*crossing.Report {
	if m == nil {
		m = sgx.MachineB()
	}
	return crossing.Analyze(p.Partitioned, crossing.DefaultEstimator(), m.Cost)
}

// CompileIR skips the MiniC frontend and consumes textual IR directly —
// the analogue of feeding the compiler an LLVM bitcode file (paper
// Figure 5). The text format is what ir.Module.String prints.
func CompileIR(name, src string, opts Options) (*Program, error) {
	mod, err := ir.ParseModule(name, src)
	if err != nil {
		return nil, fmt.Errorf("privagic: ir: %w", err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: opts.Mode, Entries: opts.Entries})
	if err := an.Err(); err != nil {
		return nil, fmt.Errorf("privagic: secure typing: %w", err)
	}
	return finishProgram(mod, an, opts)
}

// EmitIR returns the program's whole-module textual IR, re-consumable by
// CompileIR.
func (p *Program) EmitIR() string { return p.Module.String() }

// Check runs only the frontend and the secure type system, returning the
// analysis (including its errors) without partitioning. Useful for
// inspecting colors and diagnostics.
func Check(filename, src string, opts Options) (*typing.Analysis, error) {
	mod, err := minic.Compile(filename, src)
	if err != nil {
		return nil, fmt.Errorf("privagic: frontend: %w", err)
	}
	passes.RunAll(mod)
	return typing.Analyze(mod, typing.Options{Mode: opts.Mode, Entries: opts.Entries}), nil
}

// Colors returns the named enclave colors of the program.
func (p *Program) Colors() []string {
	out := make([]string, len(p.Analysis.Colors))
	for i, c := range p.Analysis.Colors {
		out[i] = c.String()
	}
	return out
}

// TCBReport computes the Table 4-style trusted-computing-base metrics.
func (p *Program) TCBReport() *partition.TCBReport {
	return p.Partitioned.Report()
}

// Instance is a loaded program on a simulated SGX machine.
type Instance struct {
	ip  *interp.Interp
	inj *faults.Injector
	mut *faults.Mutator

	// engineErr stashes an engine-selection failure from Instantiate
	// (Instantiate has no error return); the first Call surfaces it.
	engineErr error

	// reg/tracer are the observability layer (nil until
	// EnableObservability; everything downstream is nil-safe).
	reg    *obs.Registry
	tracer *obs.Tracer
}

// Instantiate loads the program on a machine (nil means the paper's
// machine B preset) and selects the program's execution engine (the
// compiled and differential tiers lower every chunk body here). Call
// Close when done to stop the enclave workers.
func (p *Program) Instantiate(m *sgx.Machine) *Instance {
	if m == nil {
		m = sgx.MachineB()
	}
	inst := &Instance{ip: interp.New(p.Partitioned, m)}
	eng, err := p.Engine.prtEngine()
	if err == nil {
		err = inst.ip.SetEngine(eng)
	}
	inst.engineErr = err
	return inst
}

// Call invokes an entry point through its interface version (§7.3.4).
func (i *Instance) Call(entry string, args ...int64) (int64, error) {
	if i.engineErr != nil {
		return 0, i.engineErr
	}
	return i.ip.Call(entry, args...)
}

// ExecStats snapshots the execution-engine counters: unit compile time,
// compiled-tier dispatches, and differential-oracle divergences (always
// zero on a healthy build — any nonzero value is a compiler bug caught
// in the act).
func (i *Instance) ExecStats() interp.ExecStats { return i.ip.ExecStats() }

// Output returns everything the program printed so far.
func (i *Instance) Output() string { return i.ip.Output() }

// Meter exposes the simulated cycle and event accounting.
func (i *Instance) Meter() *sgx.Meter { return i.ip.RT.Meter }

// AllocUnsafe allocates n bytes in unsafe memory and returns the simulated
// address, for passing buffers to entry points.
func (i *Instance) AllocUnsafe(n int64) uint64 {
	r := i.ip.RT.Space.Region(sgx.Unsafe)
	return sgx.EncodePtr(sgx.Unsafe, r.Alloc(n))
}

// WriteUnsafe copies data into unsafe memory at a simulated address.
func (i *Instance) WriteUnsafe(addr uint64, data []byte) {
	rid, off := sgx.DecodePtr(addr)
	i.ip.RT.Space.Region(rid).Store(off, data)
}

// ReadUnsafe copies n bytes out of unsafe memory.
func (i *Instance) ReadUnsafe(addr uint64, n int) []byte {
	rid, off := sgx.DecodePtr(addr)
	buf := make([]byte, n)
	i.ip.RT.Space.Region(rid).Load(off, buf)
	return buf
}

// EnableSpawnValidation installs the spawn whitelist of paper §8's
// future-work defense: enclave workers refuse spawn messages for chunks
// the compiler never scheduled on them.
func (i *Instance) EnableSpawnValidation() { i.ip.EnableSpawnValidation() }

// RejectedSpawns reports how many injected spawn messages validation
// refused.
func (i *Instance) RejectedSpawns() int64 { return i.ip.RT.RejectedSpawns() }

// SupervisionOptions configures the runtime's fault-tolerance layer.
type SupervisionOptions struct {
	// WaitTimeout is the inactivity window of every runtime wait/join: a
	// lost message degrades into an error satisfying errors.Is(err,
	// ErrWaitTimeout) once nothing authentic has arrived for this long,
	// instead of hanging the calling thread forever. Progress restarts
	// the window, so it bounds stalls, not total call duration. 0 keeps
	// the paper's trusting block-forever behavior.
	WaitTimeout time.Duration
	// Watchdog starts a supervisor goroutine reporting which tag/join a
	// stuck worker is blocked on (see SupervisionStats().Stalls).
	Watchdog bool
	// QueueCapacity bounds every runtime worker queue (0 = unbounded).
	// Full queues make producers wait — end-to-end backpressure — and
	// surface through Saturated for admission control at the edge.
	QueueCapacity int
	// RestartStuck lets the watchdog escalate a stalled enclave worker
	// into a restart: tear down, fresh epoch, replay of in-flight spawns
	// (needs Watchdog and EnableRecovery).
	RestartStuck bool
}

// EnableSupervision turns on timeouts, the watchdog, and the cont-tag
// whitelist (alongside EnableSpawnValidation's spawn whitelist). Call it
// before the first Call.
func (i *Instance) EnableSupervision(o SupervisionOptions) {
	i.ip.EnableContValidation()
	i.ip.EnableSupervision(prt.Supervision{
		WaitTimeout: o.WaitTimeout, Watchdog: o.Watchdog,
		QueueCapacity: o.QueueCapacity, RestartStuck: o.RestartStuck,
	})
}

// RecoveryOptions configures bounded restart/replay of crashed chunks.
type RecoveryOptions struct {
	// MaxAttempts is the per-spawn replay budget: a chunk that aborts is
	// re-executed from its journaled arguments up to this many times
	// before the original typed error surfaces from Call. 0 disables
	// recovery.
	MaxAttempts int
	// Backoff is the delay before the first replay (default 100µs),
	// doubling per replay up to MaxBackoff (default 2ms), randomized by
	// ±Jitter (default 0.2) to decorrelate mass failures.
	Backoff    time.Duration
	MaxBackoff time.Duration
	Jitter     float64
}

// EnableRecovery turns crashed chunks from surfaced errors into replayed
// work: spawns are journaled, a chunk's visible effects (memory writes,
// output) buffer until it completes, and a poisoned completion replays
// the spawn with backoff instead of reaching the caller — until the
// attempt budget runs out. Combine with EnableSupervision (the timeout
// converts a wedged worker into an error recovery can act on) and, for
// stuck-worker restarts, SupervisionOptions.RestartStuck. Call before
// the first Call.
func (i *Instance) EnableRecovery(o RecoveryOptions) {
	i.ip.EnableRecovery(prt.RecoveryPolicy{
		MaxAttempts: o.MaxAttempts,
		Backoff:     o.Backoff, MaxBackoff: o.MaxBackoff, Jitter: o.Jitter,
	})
}

// RecoveryStats merges the runtime's restart/replay counters with the
// interpreter's effect-transaction counters. After a quiescent fully
// recovered workload, Commits == SpawnsJournaled and Giveups == 0 — the
// exactly-once invariant.
type RecoveryStats struct {
	prt.RecoveryStats
	// EffectCommits counts chunk effect transactions applied;
	// EffectDiscards counts crashed attempts whose buffered effects were
	// dropped (each discard is a write set that would have been
	// double-applied without buffering).
	EffectCommits  int64
	EffectDiscards int64
}

// RecoveryStats snapshots the recovery layer.
func (i *Instance) RecoveryStats() RecoveryStats {
	commits, discards := i.ip.EffectStats()
	return RecoveryStats{
		RecoveryStats:  i.ip.RT.RecoveryStats(),
		EffectCommits:  commits,
		EffectDiscards: discards,
	}
}

// SupervisionStats snapshots the runtime's robustness counters: hostile
// messages rejected, duplicates and stale stragglers suppressed, aborts,
// timeouts, drained messages, and watchdog stalls.
func (i *Instance) SupervisionStats() prt.SupStats { return i.ip.RT.SupervisionStats() }

// Saturated reports whether any bounded runtime worker queue is at
// capacity right now (needs SupervisionOptions.QueueCapacity). It is the
// backend-pressure probe behind memcached.Admission.Saturated and
// cluster.Config.Saturated: wiring it there makes a congested partitioned
// backend shed at the network edge with SERVER_ERROR busy instead of
// queueing without bound.
func (i *Instance) Saturated() bool { return i.ip.RT.Saturated() }

// Typed failure sentinels, for errors.Is against Call's error: a bounded
// wait that gave up, a chunk that crashed inside its enclave (the
// simulated AEX), a call interrupted by shutdown, and a runtime boundary
// defense detection (smashed pointer, mutated payload).
var (
	ErrWaitTimeout   = prt.ErrWaitTimeout
	ErrEnclaveAbort  = prt.ErrEnclaveAbort
	ErrStopped       = prt.ErrStopped
	ErrIagoViolation = prt.ErrIagoViolation
)

// ErrDivergence is the differential oracle's sentinel: the interpreter
// and the compiled tier disagreed on a chunk's results, effects, message
// plan, or error. errors.Is(err, ErrDivergence) against Call's error
// detects it; errors.As with *interp.DivergenceError reads the detail.
var ErrDivergence = interp.ErrDivergence

// BoundaryDefenseOptions selects the runtime Iago defenses (DESIGN.md
// §11). Arm all three for the hardened-mode guarantee; the zero value
// disables everything (the relaxed, trusting behavior).
type BoundaryDefenseOptions struct {
	// Snapshots copies each unsafe-memory word into enclave-private
	// memory at its first read of a barrier interval and serves repeated
	// reads from the copy — double-fetch/TOCTOU is never observed.
	Snapshots bool
	// SanitizePointers validates every address against the memory map
	// (region mapped, offset under the allocation extent) before a
	// dereference; a smashed pointer surfaces as ErrIagoViolation.
	SanitizePointers bool
	// PayloadTags extends the message auth stamp to payload words: a
	// queued message mutated in place is rejected at the admit gate.
	PayloadTags bool
}

// FullBoundaryDefense arms all three boundary defenses.
func FullBoundaryDefense() BoundaryDefenseOptions {
	return BoundaryDefenseOptions{Snapshots: true, SanitizePointers: true, PayloadTags: true}
}

// EnableBoundaryDefense arms the runtime Iago defense layer. Call before
// the first Call.
func (i *Instance) EnableBoundaryDefense(o BoundaryDefenseOptions) {
	i.ip.EnableBoundaryDefense(interp.BoundaryConfig{
		Snapshots:        o.Snapshots,
		SanitizePointers: o.SanitizePointers,
		PayloadTags:      o.PayloadTags,
	})
}

// BoundaryStats merges the interpreter's per-load classification with the
// runtime's payload-tag rejections: how many boundary crossings each
// defense covered and how many attacks were detected.
type BoundaryStats struct {
	interp.BoundaryStats
	// PayloadTampered counts messages rejected at the admit gate because
	// their payload integrity tag no longer matched their contents.
	PayloadTampered int64
}

// BoundaryStats snapshots the boundary-defense counters.
func (i *Instance) BoundaryStats() BoundaryStats {
	return BoundaryStats{
		BoundaryStats:   i.ip.BoundaryStats(),
		PayloadTampered: i.ip.RT.SupervisionStats().PayloadTampered,
	}
}

// ObservabilityOptions configures the metrics registry and structured
// tracer (OBSERVABILITY.md is the catalogue of everything they export).
type ObservabilityOptions struct {
	// Metrics publishes the runtime's counters into a registry readable
	// via MetricsSnapshot. Almost free: the metrics are read-on-snapshot
	// closures over counters the subsystems maintain anyway; only the
	// two latency histograms add per-event work.
	Metrics bool
	// Trace arms the structured event tracer: every runtime decision
	// (spawn, wait, reject, replay, restart) is recorded into per-worker
	// ring buffers, exportable as Chrome trace_event JSON via
	// WriteChromeTrace and attached to aborts/timeouts as a text flight
	// record. Costs one uncontended mutex acquisition per message event.
	Trace bool
	// TraceBuffer is the per-worker-shard ring capacity (0 = 1024
	// events, sized to keep the rings cache-resident next to a live
	// workload). The tracer keeps exact per-kind totals even after the
	// rings wrap; only the exportable event bodies are bounded, so size
	// this up (e.g. 1<<14) for full-history capture runs.
	TraceBuffer int
}

// EnableObservability arms the metrics registry and/or the tracer. Call
// before the first Call (and before EnableFaultInjection/EnableMutator if
// their counters should appear in snapshots). Disabled observability
// costs one branch per instrumentation point.
func (i *Instance) EnableObservability(o ObservabilityOptions) {
	if o.Trace {
		i.tracer = obs.NewTracer(o.TraceBuffer)
	}
	if o.Metrics {
		i.reg = obs.NewRegistry()
	}
	i.ip.EnableObservability(i.reg, i.tracer)
	if i.reg != nil {
		if i.inj != nil {
			i.reg.RegisterSource("inject", i.inj)
		}
		if i.mut != nil {
			i.reg.RegisterSource("mutate", i.mut)
		}
	}
}

// MetricsSnapshot flattens the registry into metric name -> value (nil
// when EnableObservability did not ask for metrics). Names are catalogued
// in OBSERVABILITY.md.
func (i *Instance) MetricsSnapshot() map[string]int64 { return i.reg.Snapshot() }

// WriteChromeTrace exports the tracer's resident events as Chrome
// trace_event JSON — open the output in chrome://tracing or
// https://ui.perfetto.dev. Errors when no tracer is armed.
func (i *Instance) WriteChromeTrace(w io.Writer) error {
	return i.tracer.WriteChromeTrace(w, false)
}

// TraceDump renders the tracer's last n events as a text flight record
// (empty when no tracer is armed) — the same format attached to
// EnclaveAbort and wait-timeout errors.
func (i *Instance) TraceDump(n int) string { return i.tracer.Dump(n) }

// TraceCounts returns exact per-event-kind totals since the tracer was
// armed (nil when no tracer). Unlike the exported event bodies these
// survive ring wraparound, so they are the surface the nightly soak
// reconciles against MetricsSnapshot.
func (i *Instance) TraceCounts() map[string]int64 { return i.tracer.Counts() }

// TraceEvents returns the tracer's resident structured events in global
// order (nil when no tracer is armed). This is the raw feed behind
// privagic-explain -crossings' measured column: send events regroup into
// per-edge crossings via crossing.MeasuredEdges.
func (i *Instance) TraceEvents() []obs.Event { return i.tracer.Events() }

// MutatorOptions configures the U-memory mutator adversary (the §4
// attacker who owns unsafe memory contents, not just the message
// protocol). Probabilities are per read word / per message, in [0,1].
type MutatorOptions struct {
	// Seed fixes the corruption schedule.
	Seed int64
	// FlipAfterRead bit-flips a U word right after an enclave read (the
	// double-fetch window); SmashPointers redirects U-resident enclave
	// pointer slots past their region's extent; MutatePayload rewrites a
	// queued message's payload words in place.
	FlipAfterRead float64
	SmashPointers float64
	MutatePayload float64
	// Concurrent adds a background goroutine corrupting already-read
	// words on its own schedule.
	Concurrent bool
	// MaxHeld caps outstanding in-memory corruptions (default 16).
	MaxHeld int
}

// EnableMutator installs the mutator adversary on the instance: it
// becomes the runtime's interceptor (payload mutations) and the
// interpreter's boundary observer (memory corruptions). Combine with
// EnableBoundaryDefense and EnableSupervision to demonstrate detection;
// without them it demonstrates silent corruption (the negative control).
// Call before the workload starts.
func (i *Instance) EnableMutator(o MutatorOptions) {
	if i.mut != nil {
		i.mut.Close()
	}
	i.mut = faults.NewMutator(i.ip.RT, faults.MutatorConfig{
		Seed:          o.Seed,
		FlipAfterRead: o.FlipAfterRead,
		SmashPointers: o.SmashPointers,
		MutatePayload: o.MutatePayload,
		Concurrent:    o.Concurrent,
		MaxHeld:       o.MaxHeld,
	})
	i.ip.SetBoundaryObserver(i.mut)
	i.reg.RegisterSource("mutate", i.mut)
}

// MutatorStats snapshots the mutator adversary's counters (zero value
// when no mutator was enabled).
func (i *Instance) MutatorStats() faults.MutStats {
	if i.mut == nil {
		return faults.MutStats{}
	}
	return i.mut.Stats()
}

// UnsafeExtent returns the allocation watermark of unsafe memory: offsets
// below it are mapped. Tests scanning U memory for pointer slots bound
// their scan with it.
func (i *Instance) UnsafeExtent() uint64 {
	return i.ip.RT.Space.Region(sgx.Unsafe).Extent()
}

// FaultOptions configures the deterministic fault injector. Probabilities
// are per message (or per spawned chunk, for Crash), in [0,1].
type FaultOptions struct {
	// Seed fixes the injection schedule: the same seed over the same
	// workload produces the same decisions.
	Seed int64
	// Message faults: vanish, replay, hold for a few deliveries, deliver
	// out of order, inject a forged hostile message alongside.
	Drop      float64
	Duplicate float64
	Delay     float64
	Reorder   float64
	Forge     float64
	// Crash makes a spawned chunk panic at entry (the simulated AEX);
	// CrashMid is the per-store probability of a panic in the middle of
	// the chunk's body, after some writes were issued — the case that
	// needs the recovery layer's effect buffering to replay cleanly.
	Crash    float64
	CrashMid float64
	// MaxCrashes caps total injected crashes, entry and mid-run combined
	// (0 = unlimited). At or below the recovery attempt budget, every
	// request deterministically recovers.
	MaxCrashes int
	// Retransmit re-delivers dropped messages after RetransmitAfter
	// (default 2ms), charging the cost model's Retransmit cycles: the
	// supervised transport's answer to lossy queues.
	Retransmit      bool
	RetransmitAfter time.Duration
}

// EnableFaultInjection installs the injector on the instance's runtime.
// Combine with EnableSupervision: without timeouts, a dropped message
// without retransmit blocks its waiter forever (by design — that is the
// failure mode supervision exists to remove).
func (i *Instance) EnableFaultInjection(o FaultOptions) {
	if i.inj != nil {
		i.inj.Close()
	}
	i.inj = faults.Attach(i.ip.RT, faults.Config{
		Seed: o.Seed,
		Drop: o.Drop, Duplicate: o.Duplicate, Delay: o.Delay,
		Reorder: o.Reorder, Forge: o.Forge, Crash: o.Crash,
		CrashMid: o.CrashMid, MaxCrashes: o.MaxCrashes,
		Retransmit: o.Retransmit, RetransmitAfter: o.RetransmitAfter,
	})
	if o.CrashMid > 0 {
		i.ip.SetCrashPoint(i.inj.CrashPoint)
	} else {
		i.ip.SetCrashPoint(nil)
	}
	// Re-arming replaces the previous source: RegisterSource keys by
	// prefix, so snapshots always read the live injector.
	i.reg.RegisterSource("inject", i.inj)
}

// FaultStats snapshots the injector's counters (zero value when fault
// injection was never enabled).
func (i *Instance) FaultStats() faults.Stats {
	if i.inj == nil {
		return faults.Stats{}
	}
	return i.inj.Stats()
}

// FaultCounters aggregates every enabled adversary's counters in the
// uniform name -> count form (faults.CounterSource), prefixed by the
// fault class ("inject." for the message injector, "mutate." for the
// memory mutator). Empty when no adversary is enabled.
func (i *Instance) FaultCounters() map[string]int64 {
	out := map[string]int64{}
	if i.inj != nil {
		for k, v := range i.inj.Counters() {
			out["inject."+k] = v
		}
	}
	if i.mut != nil {
		for k, v := range i.mut.Counters() {
			out["mutate."+k] = v
		}
	}
	return out
}

// Close stops the instance's worker threads, supervisor, injector, and
// mutator.
func (i *Instance) Close() {
	if i.inj != nil {
		i.inj.Close()
	}
	if i.mut != nil {
		i.mut.Close()
		i.ip.SetBoundaryObserver(nil)
	}
	i.ip.Close()
}

// MachineA returns the paper's machine A preset (i5-9500, SGXv1, 93 MiB
// EPC).
func MachineA() *sgx.Machine { return sgx.MachineA() }

// MachineB returns the paper's machine B preset (Xeon Gold 5415+, SGXv2,
// 8131 MiB EPC).
func MachineB() *sgx.Machine { return sgx.MachineB() }
