package privagic

import (
	"strings"
	"testing"

	"privagic/internal/sources"
)

// TestCompileAndRunQuickstart exercises the public API end to end.
func TestCompileAndRunQuickstart(t *testing.T) {
	src := `
ignore long reveal(long color(vault) v);
long color(vault) balance = 0;
entry void deposit(long color(vault) cents) { balance = balance + cents; }
entry long audit() { return reveal(balance); }
`
	prog, err := Compile("wallet.c", src, Options{Mode: Hardened})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Colors(); len(got) != 1 || got[0] != "vault" {
		t.Errorf("Colors() = %v, want [vault]", got)
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	for _, c := range []int64{500, 125, 75} {
		if _, err := inst.Call("deposit", c); err != nil {
			t.Fatal(err)
		}
	}
	total, err := inst.Call("audit")
	if err != nil {
		t.Fatal(err)
	}
	if total != 700 {
		t.Errorf("audit() = %d, want 700", total)
	}
}

// TestCompileReportsTypeErrors checks error surfacing through the facade.
func TestCompileReportsTypeErrors(t *testing.T) {
	src := `
int color(blue) secret;
int leak;
entry void f() { leak = secret; }
`
	_, err := Compile("leak.c", src, Options{Mode: Hardened})
	if err == nil {
		t.Fatal("expected a confidentiality error")
	}
	if !strings.Contains(err.Error(), "secure typing") {
		t.Errorf("error %v does not come from the type system", err)
	}
}

// TestCheckWithoutPartitioning checks the analysis-only path.
func TestCheckWithoutPartitioning(t *testing.T) {
	an, err := Check("m.c", sources.MemcachedCoreColored, Options{Mode: Hardened})
	if err != nil {
		t.Fatal(err)
	}
	if terr := an.Err(); terr != nil {
		t.Fatalf("memcached core should type-check: %v", terr)
	}
	if len(an.Colors) != 1 || an.Colors[0].Name != "store" {
		t.Errorf("colors = %v, want [store]", an.Colors)
	}
}

// TestTCBReportThroughFacade checks the Table 4 path.
func TestTCBReportThroughFacade(t *testing.T) {
	prog, err := Compile("m.c", sources.MemcachedCoreColored, Options{Mode: Hardened})
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.TCBReport()
	if rep.ReductionFactor() < 50 {
		t.Errorf("TCB reduction = %.0f, want large", rep.ReductionFactor())
	}
}

// TestUnsafeMemoryHelpers checks the buffer-passing helpers.
func TestUnsafeMemoryHelpers(t *testing.T) {
	src := `
entry long first_byte(char* p) { return p[0]; }
`
	prog, err := Compile("b.c", src, Options{Mode: Relaxed})
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.Instantiate(MachineA())
	defer inst.Close()
	addr := inst.AllocUnsafe(16)
	inst.WriteUnsafe(addr, []byte{42, 1, 2})
	got, err := inst.Call("first_byte", int64(addr))
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("first_byte = %d, want 42", got)
	}
	if b := inst.ReadUnsafe(addr, 3); b[0] != 42 || b[2] != 2 {
		t.Errorf("ReadUnsafe = %v", b)
	}
}
